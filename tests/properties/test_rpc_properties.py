"""Property-based invariants of the RPC-offload path (repro.apps.rpc).

Three contracts, each over randomized traces:

* **exactly-once** — every request gets exactly one response, with
  matching id and payload sizes;
* **per-rank ordering** — a rank's responses arrive in its issue order;
* **priority never reorders** — coalescing across the sync-bypass lane
  never changes per-rank delivery order, and priority requests are
  never merged into a shared descriptor.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.apps.rpc import RpcParams, run_rpc
from repro.bench.arrivals import RpcCall
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


@st.composite
def rpc_traces(draw):
    """A small random open-loop trace over 1–3 ranks."""
    nranks = draw(st.integers(1, 3))
    calls = []
    for rank in range(nranks):
        n = draw(st.integers(1, 8))
        now = 0.0
        for i in range(n):
            now += draw(st.floats(0.0, 30_000.0, allow_nan=False))
            calls.append(
                RpcCall(
                    req_id=rank * 1_000_000 + i,
                    rank=rank,
                    issue_ns=now,
                    req_bytes=draw(st.integers(1, 512)),
                    resp_bytes=draw(st.integers(1, 2048)),
                    method=f"m{draw(st.integers(0, 3))}",
                    priority=draw(st.booleans()),
                )
            )
    return calls


def run_trace(calls, **params):
    system = VSCCSystem(
        num_devices=2, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA, seed=7
    )
    return run_rpc(system, calls, RpcParams(**params))


@given(rpc_traces())
@settings(max_examples=25, deadline=None)
def test_every_request_gets_exactly_one_matching_response(calls):
    report = run_trace(calls)
    assert report.completed == len(calls)
    counts = Counter(c.req_id for c in report.completions)
    assert set(counts) == {c.req_id for c in calls}
    assert set(counts.values()) == {1}
    by_id = {c.req_id: c for c in calls}
    for done in report.completions:
        issued = by_id[done.req_id]
        assert done.rank == issued.rank
        assert done.req_bytes == issued.req_bytes
        assert done.resp_bytes == issued.resp_bytes
        assert done.method == issued.method
        assert done.done_ns >= done.issue_ns == issued.issue_ns


@given(rpc_traces())
@settings(max_examples=25, deadline=None)
def test_responses_per_rank_arrive_in_issue_order(calls):
    report = run_trace(calls)
    for rank in {c.rank for c in calls}:
        seen = [c.req_id for c in report.completions if c.rank == rank]
        # req_id encodes the per-rank issue index, so issue order is
        # ascending-id order.
        assert seen == sorted(seen)


@given(rpc_traces(), st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_coalescing_never_reorders_across_sync_bypass(calls, coalesce_max):
    # Aggressive coalescing plus priority (sync-lane) traffic in the
    # same trace: descriptors may merge plain requests and priority
    # requests may bypass bulk depth, but per-rank delivery order is
    # still exactly issue order, and every priority request went alone.
    report = run_trace(calls, coalesce_bytes=512, coalesce_max=coalesce_max)
    d = report.dispatcher
    assert d.priority_submits == sum(1 for c in calls if c.priority)
    for rank in {c.rank for c in calls}:
        seen = [c.req_id for c in report.completions if c.rank == rank]
        assert seen == sorted(seen)
    # Conservation: merged + solo descriptors carry every request once.
    assert d.requests == len(calls)
    assert d.descriptors <= len(calls)
