"""Unit tests for the Rcce communicator (on-chip)."""

import numpy as np
import pytest

from repro.rcce.api import Rcce, RcceOptions
from repro.rcce.session import RcceSession


def test_send_recv_roundtrip(session):
    payload = (np.arange(1000) % 251).astype(np.uint8)
    got = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(payload, 5)
        elif comm.rank == 5:
            got["data"] = yield from comm.recv(1000, 0)

    session.run(program, ranks=[0, 5])
    assert (got["data"] == payload).all()


def test_multi_chunk_message(session):
    """Messages beyond the MPB payload split into chunks."""
    size = 20000  # > 2 chunks of 7680
    payload = (np.arange(size) % 251).astype(np.uint8)
    got = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(payload, 1)
        elif comm.rank == 1:
            got["data"] = yield from comm.recv(size, 0)

    session.run(program, ranks=[0, 1])
    assert (got["data"] == payload).all()


def test_zero_byte_message(session):
    done = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(b"", 1)
        elif comm.rank == 1:
            data = yield from comm.recv(0, 1 - 1)
            done["len"] = len(data)

    session.run(program, ranks=[0, 1])
    assert done["len"] == 0


def test_send_accepts_float_arrays(session):
    values = np.linspace(0, 1, 100)
    got = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(values, 1)
        elif comm.rank == 1:
            raw = yield from comm.recv(values.nbytes, 0)
            got["values"] = raw.view(np.float64)

    session.run(program, ranks=[0, 1])
    assert np.array_equal(got["values"], values)


def test_self_send_rejected(session):
    def program(comm):
        yield from comm.send(b"x", comm.rank)

    with pytest.raises(Exception):
        session.run(program, ranks=[0])


def test_messages_between_pairs_are_ordered(session):
    got = []

    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(bytes([i]), 1)
        elif comm.rank == 1:
            for i in range(5):
                data = yield from comm.recv(1, 0)
                got.append(data[0])

    session.run(program, ranks=[0, 1])
    assert got == [0, 1, 2, 3, 4]


def test_bidirectional_concurrent_pairs(session):
    """Two rank pairs communicating simultaneously don't interfere."""
    got = {}

    def program(comm):
        peers = {0: 1, 1: 0, 2: 3, 3: 2}
        peer = peers[comm.rank]
        payload = bytes([comm.rank]) * 100
        if comm.rank % 2 == 0:
            yield from comm.send(payload, peer)
            got[comm.rank] = yield from comm.recv(100, peer)
        else:
            data = yield from comm.recv(100, peer)
            yield from comm.send(bytes([comm.rank]) * 100, peer)
            got[comm.rank] = data

    session.run(program, ranks=[0, 1, 2, 3])
    assert bytes(got[0]) == bytes([1]) * 100
    assert bytes(got[3]) == bytes([2]) * 100


def test_user_mpb_area_reduces_comm_buffer():
    session = RcceSession(options=RcceOptions(user_mpb_bytes=1024))
    comm = session.comm_for(0)
    assert comm.comm_buffer_bytes == 7680 - 1024
    offset = comm.malloc(100)
    assert 0 <= offset < 1024


def test_malloc_requires_user_area(session):
    comm = session.comm_for(0)
    with pytest.raises(RuntimeError):
        comm.malloc(32)


def test_seq_channels_are_independent(session):
    comm = session.comm_for(0)
    assert comm.next_seq(0, 1, "sent") == 1
    assert comm.next_seq(0, 1, "sent") == 2
    assert comm.next_seq(0, 1, "ready") == 1
    assert comm.next_seq(1, 0, "sent") == 1
