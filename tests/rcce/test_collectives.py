"""Unit tests for barrier/bcast/reduce/allreduce/gather."""

import numpy as np
import pytest

from repro.rcce.session import RcceSession


@pytest.fixture(params=[2, 5, 8, 13])
def nranks(request):
    return request.param


def test_barrier_synchronizes(session, nranks):
    after = {}

    def program(comm):
        if comm.rank >= nranks:
            return
        # stagger arrivals
        yield from comm.env.compute(cycles=comm.rank * 10000)
        yield from comm.barrier(group_size=nranks)
        after[comm.rank] = comm.env.sim.now

    session.run(program, ranks=range(nranks))
    latest_arrival = (nranks - 1) * 10000 * session.params.core_clock.period_ns
    assert all(t >= latest_arrival for t in after.values())


def test_barrier_rejects_outside_rank(session):
    def program(comm):
        yield from comm.barrier(group_size=1)

    with pytest.raises(Exception):
        session.run(program, ranks=[3])


def test_bcast_delivers_to_all(session, nranks):
    payload = np.arange(300, dtype=np.uint8)
    got = {}

    def program(comm):
        if comm.rank >= nranks:
            return
        data = yield from comm.bcast(payload if comm.rank == 2 % nranks else None,
                                     300, root=2 % nranks, group_size=nranks)
        got[comm.rank] = data

    session.run(program, ranks=range(nranks))
    for rank in range(nranks):
        assert (np.asarray(got[rank]) == payload).all()


def test_reduce_sums_vectors(session, nranks):
    got = {}

    def program(comm):
        if comm.rank >= nranks:
            return
        values = np.full(8, float(comm.rank + 1))
        result = yield from comm.reduce(values, np.add, root=0, group_size=nranks)
        got[comm.rank] = result

    session.run(program, ranks=range(nranks))
    expected = sum(range(1, nranks + 1))
    assert np.allclose(got[0], expected)
    assert all(got[r] is None for r in range(1, nranks))


def test_allreduce_everyone_gets_result(session):
    got = {}

    def program(comm):
        if comm.rank >= 6:
            return
        result = yield from comm.allreduce(np.array([float(comm.rank)]), np.add, group_size=6)
        got[comm.rank] = result[0]

    session.run(program, ranks=range(6))
    assert all(v == pytest.approx(15.0) for v in got.values())


def test_reduce_maximum(session):
    got = {}

    def program(comm):
        if comm.rank >= 4:
            return
        values = np.array([float((comm.rank * 7) % 5)])
        result = yield from comm.reduce(values, np.maximum, root=0, group_size=4)
        got[comm.rank] = result

    session.run(program, ranks=range(4))
    assert got[0][0] == pytest.approx(4.0)


def test_gather_collects_in_rank_order(session):
    import repro.rcce.collectives as coll
    got = {}

    def program(comm):
        if comm.rank >= 4:
            return
        parts = yield from coll.gather(comm, np.array([comm.rank], np.uint8), root=1, group_size=4)
        got[comm.rank] = parts

    session.run(program, ranks=range(4))
    assert [bytes(p)[0] for p in got[1]] == [0, 1, 2, 3]
    assert got[0] is None


# -- members= validation: bad groups must fail loudly, never deadlock ----------


def test_members_out_of_range_raises_upfront(session):
    """A member rank beyond the layout used to deadlock the group (the
    tree blocks on a rank that never runs); now it raises before any
    communication happens."""
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.barrier(members=[0, 1, 999])

    with pytest.raises(ProcessFailed, match=r"members \[999\] out of range"):
        session.run(program, ranks=[0, 1])


def test_members_negative_rank_raises(session):
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.allreduce(np.ones(2), np.add, members=[0, -1, 2])

    with pytest.raises(ProcessFailed, match="out of range"):
        session.run(program, ranks=[0])


def test_members_duplicates_raise_with_dupes_listed(session):
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.barrier(members=[0, 1, 2, 1])

    with pytest.raises(ProcessFailed, match=r"duplicate.*\[1\]"):
        session.run(program, ranks=[0])


def test_members_validation_applies_to_hierarchical(session):
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.barrier(members=[0, 77], hierarchical=True)

    with pytest.raises(ProcessFailed, match="out of range"):
        session.run(program, ranks=[0])


def test_members_caller_not_in_group_raises(session):
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.barrier(members=[1, 2])

    with pytest.raises(ProcessFailed, match="outside the collective group"):
        session.run(program, ranks=[0])
