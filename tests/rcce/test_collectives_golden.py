"""Golden-model collective harness: every collective vs a numpy reference.

Covers the full matrix the ISSUE demands — all five collectives
(barrier, bcast, reduce, allreduce, gather) × both implementations
(flat binomial, two-level hierarchical) × the three scheme policies
(static, threshold, adaptive) — on a two-device system whose test group
is a ``members=`` permutation spanning both devices, with payload sizes
straddling the direct-transfer and vDMA thresholds.

**Bitwise contract.** The references below replicate the exact
combination order of each implementation (the flat binomial virtual-rank
order; for hierarchical, the per-device binomial folds followed by the
leader tree — the order documented in :mod:`repro.rcce.hierarchical`),
so results are asserted *bitwise equal* — for integer dtypes trivially,
and for floats because the simulated run performs the identical sequence
of IEEE operations as the reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vscc.policy import AdaptivePolicy, StaticPolicy, ThresholdPolicy
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem

# -- shared systems ------------------------------------------------------------

POLICIES = {
    "static": lambda: StaticPolicy(CommScheme.LOCAL_PUT_LOCAL_GET_VDMA),
    "threshold": lambda: ThresholdPolicy(),
    "adaptive": lambda: AdaptivePolicy(),
}

#: Kernel backends the golden matrix runs under: every collective must
#: produce the same bitwise results on the serial and sharded kernels.
KERNELS = ["serial", "sharded"]

#: One system per (policy, kernel), shared across the matrix: collectives
#: leave no state behind beyond monotonic clocks/counters, and rebuilding
#: a 96-core system per case would dominate the suite's runtime.
_SYSTEMS: dict[tuple[str, str], VSCCSystem] = {}


def system_for(policy_name: str, kernel: str = "serial") -> VSCCSystem:
    system = _SYSTEMS.get((policy_name, kernel))
    if system is None:
        system = _SYSTEMS[(policy_name, kernel)] = VSCCSystem(
            num_devices=2, policy=POLICIES[policy_name](), kernel=kernel
        )
    return system


#: A members= permutation interleaving both devices (96 ranks: device 0
#: is 0-47, device 1 is 48-95), with the root cases off position 0.
MEMBERS = [3, 50, 0, 95, 7, 48, 12, 60]

#: Payload sizes straddling the §3.3 direct threshold (64/128 B) and the
#: single-chunk → vDMA cutover (7680 B on the default geometry).
SIZES = (16, 64, 200, 8192)

DTYPES = (np.float64, np.int64, np.int32, np.uint8)


# -- golden references ---------------------------------------------------------


def flat_reduce_ref(vals: list[np.ndarray], op, root: int) -> np.ndarray:
    """The flat binomial reduction, combination-for-combination.

    Virtual rank ``vr = (me - root) % n``; at each mask level every
    active ``vr`` with the mask bit clear absorbs ``vr + mask``. This is
    the exact order ``collectives.reduce`` performs, so float results
    match the simulated run bit for bit.
    """
    n = len(vals)
    acc = [np.array(vals[(vr + root) % n], copy=True) for vr in range(n)]
    mask = 1
    while mask < n:
        for i in range(0, n, 2 * mask):
            if i + mask < n:
                acc[i] = op(acc[i], acc[i + mask])
        mask <<= 1
    return acc[0]


def group_partition(system: VSCCSystem, members: list[int]) -> list[list[int]]:
    """Per-device partition as *group indices*, first-appearance order —
    mirrors ``VsccTopology.device_groups`` over the member list."""
    groups: dict[int, list[int]] = {}
    for gi, rank in enumerate(members):
        groups.setdefault(system.topology.device_of(rank), []).append(gi)
    return list(groups.values())


def hier_reduce_ref(
    groups: list[list[int]], vals: list[np.ndarray], op, root: int
) -> np.ndarray:
    """The two-level reduction order: per-device binomial folds (rooted
    at the device leader), then the flat binomial over the leaders."""
    leader_vals = []
    root_pos = None
    for gpos, g in enumerate(groups):
        leader = root if root in g else g[0]
        sub_vals = [vals[i] for i in g]
        leader_vals.append(flat_reduce_ref(sub_vals, op, g.index(leader)))
        if root in g:
            root_pos = gpos
    return flat_reduce_ref(leader_vals, op, root_pos)


def reduce_ref(system, members, vals, op, root, impl) -> np.ndarray:
    if impl == "flat":
        return flat_reduce_ref(vals, op, root)
    return hier_reduce_ref(group_partition(system, members), vals, op, root)


# -- the matrix: 5 collectives × 2 implementations × 3 policies ----------------


def _run(system, members, program):
    results = system.run(program, ranks=members).results
    return {rank: results[rank] for rank in members}


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("impl", ["flat", "hier"])
def test_golden_barrier(impl, policy_name, kernel):
    """Barrier orders every pre-barrier event before every post-barrier
    release — the golden model of a barrier is the max arrival time."""
    system = system_for(policy_name, kernel)
    hier = impl == "hier"
    arrived, released = {}, {}

    def program(comm):
        pos = members.index(comm.rank)
        yield from comm.env.compute(cycles=pos * 5000)
        arrived[comm.rank] = comm.env.sim.now
        yield from comm.barrier(members=members, hierarchical=hier)
        released[comm.rank] = comm.env.sim.now

    members = MEMBERS
    _run(system, members, program)
    latest = max(arrived.values())
    assert all(t >= latest for t in released.values())


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("impl", ["flat", "hier"])
def test_golden_bcast(impl, policy_name, kernel):
    system = system_for(policy_name, kernel)
    hier = impl == "hier"
    members = MEMBERS
    root = 3
    for size in SIZES:
        payload = np.arange(size, dtype=np.uint8) * 7 % 251
        got = {}

        def program(comm):
            data = payload if comm.rank == members[root] else None
            out = yield from comm.bcast(
                data, size, root, members=members, hierarchical=hier
            )
            got[comm.rank] = np.asarray(out, np.uint8)

        _run(system, members, program)
        for rank in members:
            assert (got[rank] == payload).all(), (size, rank)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("impl", ["flat", "hier"])
@pytest.mark.parametrize("dtype", [np.float64, np.int32])
def test_golden_reduce(impl, policy_name, dtype, kernel):
    system = system_for(policy_name, kernel)
    hier = impl == "hier"
    members = MEMBERS
    root = 2
    vals = [
        (np.arange(8) * (gi + 3) + gi).astype(dtype) for gi in range(len(members))
    ]
    expected = reduce_ref(system, members, vals, np.add, root, impl)
    got = {}

    def program(comm):
        gi = members.index(comm.rank)
        out = yield from comm.reduce(
            vals[gi], np.add, root, members=members, hierarchical=hier
        )
        got[comm.rank] = out

    _run(system, members, program)
    result = got[members[root]]
    assert result.dtype == np.dtype(dtype)
    assert (result == expected).all()  # bitwise: reference replays the order
    assert all(got[r] is None for r in members if r != members[root])


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("impl", ["flat", "hier"])
@pytest.mark.parametrize("dtype", [np.float64, np.int64])
def test_golden_allreduce(impl, policy_name, dtype, kernel):
    system = system_for(policy_name, kernel)
    hier = impl == "hier"
    members = MEMBERS
    vals = [
        (np.linspace(0.0, 1.0, 6) * (gi + 1)).astype(dtype)
        for gi in range(len(members))
    ]
    expected = reduce_ref(system, members, vals, np.add, 0, impl)
    got = {}

    def program(comm):
        gi = members.index(comm.rank)
        out = yield from comm.allreduce(
            vals[gi], np.add, members=members, hierarchical=hier
        )
        got[comm.rank] = out

    _run(system, members, program)
    for rank in members:
        assert got[rank].dtype == np.dtype(dtype)
        assert (got[rank] == expected).all(), rank


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("impl", ["flat", "hier"])
def test_golden_gather(impl, policy_name, kernel):
    system = system_for(policy_name, kernel)
    hier = impl == "hier"
    members = MEMBERS
    root = 1
    for size in SIZES:
        got = {}

        def program(comm):
            gi = members.index(comm.rank)
            value = np.full(size, gi, np.uint8)
            parts = yield from comm.gather(
                value, root, members=members, hierarchical=hier
            )
            got[comm.rank] = parts

        _run(system, members, program)
        parts = got[members[root]]
        assert len(parts) == len(members)
        for gi in range(len(members)):
            part = np.asarray(parts[gi], np.uint8)
            assert part.shape == (size,)
            assert (part == gi).all(), (size, gi)
        assert all(got[r] is None for r in members if r != members[root])


# -- hypothesis: random groups, permutations, dtypes, sizes, roots -------------

group_strategy = st.lists(
    st.sampled_from(range(96)), min_size=2, max_size=9, unique=True
)


@given(
    members=group_strategy,
    nelem=st.integers(1, 12),
    dtype=st.sampled_from(DTYPES),
    hier=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_allreduce_matches_reference(members, nelem, dtype, hier, seed):
    system = system_for("threshold")
    rng = np.random.default_rng(seed)
    vals = [
        (rng.integers(0, 100, nelem)).astype(dtype) for _ in range(len(members))
    ]
    expected = reduce_ref(
        system, members, vals, np.add, 0, "hier" if hier else "flat"
    )
    got = {}

    def program(comm):
        gi = members.index(comm.rank)
        out = yield from comm.allreduce(
            vals[gi], np.add, members=members, hierarchical=hier
        )
        got[comm.rank] = out

    _run(system, members, program)
    for rank in members:
        assert got[rank].dtype == np.dtype(dtype)
        assert (got[rank] == expected).all()


@given(
    members=group_strategy,
    root=st.integers(0, 8),
    nelem=st.integers(1, 12),
    dtype=st.sampled_from(DTYPES),
    hier=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_reduce_matches_reference(members, root, nelem, dtype, hier):
    system = system_for("threshold")
    root %= len(members)
    vals = [
        (np.arange(nelem) * 3 + gi * 11).astype(dtype)
        for gi in range(len(members))
    ]
    expected = reduce_ref(
        system, members, vals, np.maximum, root, "hier" if hier else "flat"
    )
    got = {}

    def program(comm):
        gi = members.index(comm.rank)
        out = yield from comm.reduce(
            vals[gi], np.maximum, root, members=members, hierarchical=hier
        )
        got[comm.rank] = out

    _run(system, members, program)
    assert (got[members[root]] == expected).all()


@given(
    members=group_strategy,
    root=st.integers(0, 8),
    size=st.integers(1, 9000),
    hier=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_bcast_matches_reference(members, root, size, hier):
    system = system_for("threshold")
    root %= len(members)
    payload = (np.arange(size) * 13 % 256).astype(np.uint8)
    got = {}

    def program(comm):
        data = payload if comm.rank == members[root] else None
        out = yield from comm.bcast(
            data, size, root, members=members, hierarchical=hier
        )
        got[comm.rank] = np.asarray(out, np.uint8)

    _run(system, members, program)
    for rank in members:
        assert (got[rank] == payload).all()


@given(
    members=group_strategy,
    root=st.integers(0, 8),
    size=st.integers(1, 300),
    hier=st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_gather_matches_reference(members, root, size, hier):
    system = system_for("threshold")
    root %= len(members)
    got = {}

    def program(comm):
        gi = members.index(comm.rank)
        value = (np.arange(size) + gi * 7).astype(np.uint8)
        parts = yield from comm.gather(
            value, root, members=members, hierarchical=hier
        )
        got[comm.rank] = parts

    _run(system, members, program)
    parts = got[members[root]]
    for gi in range(len(members)):
        expected = (np.arange(size) + gi * 7).astype(np.uint8)
        assert (np.asarray(parts[gi], np.uint8) == expected).all()


@given(members=group_strategy, hier=st.booleans())
@settings(max_examples=15, deadline=None)
def test_barrier_completes_on_random_groups(members, hier):
    system = system_for("threshold")
    done = {}

    def program(comm):
        yield from comm.barrier(members=members, hierarchical=hier)
        done[comm.rank] = True

    _run(system, members, program)
    assert sorted(done) == sorted(members)


# -- flat/hier equivalence on a single device ----------------------------------


@pytest.mark.parametrize("op_name", ["barrier", "bcast", "reduce", "allreduce", "gather"])
def test_single_device_hier_degenerates_to_flat(op_name, session):
    """With one device the hierarchical plan is a single subgroup whose
    leader tree is trivial — results (and for barrier, even timing)
    match the flat implementation."""
    n = 6
    got = {"flat": {}, "hier": {}}

    def program(comm):
        for impl, hier in (("flat", False), ("hier", True)):
            if op_name == "barrier":
                yield from comm.barrier(group_size=n, hierarchical=hier)
                out = True
            elif op_name == "bcast":
                data = b"\x05" * 100 if comm.rank == 1 else None
                out = yield from comm.bcast(data, 100, 1, group_size=n, hierarchical=hier)
                out = bytes(np.asarray(out, np.uint8))
            elif op_name == "reduce":
                out = yield from comm.reduce(
                    np.arange(4.0) + comm.rank, np.add, 2, group_size=n, hierarchical=hier
                )
                out = None if out is None else out.tobytes()
            elif op_name == "allreduce":
                out = yield from comm.allreduce(
                    np.arange(4.0) * comm.rank, np.add, group_size=n, hierarchical=hier
                )
                out = out.tobytes()
            else:
                out = yield from comm.gather(
                    np.full(16, comm.rank, np.uint8), 0, group_size=n, hierarchical=hier
                )
                out = None if out is None else b"".join(bytes(p) for p in out)
            got[impl][comm.rank] = out

    session.run(program, ranks=range(n))
    assert got["flat"] == got["hier"]


# -- cross-kernel fingerprint contract -----------------------------------------


def test_collective_fingerprints_identical_across_kernels():
    """One collective mix, three backends, one (now, events) fingerprint.

    The sharded kernel's window protocol dispatches in the exact global
    (time, seq) order of the serial kernel (DESIGN.md §11), so the
    simulated clock, the event count and every payload byte must agree
    bit for bit — including on a deliberately bad shard count.
    """

    def fingerprint(kernel):
        system = VSCCSystem(
            num_devices=2, policy=POLICIES["threshold"](), kernel=kernel
        )
        vals = {}

        def program(comm):
            gi = MEMBERS.index(comm.rank)
            data = (np.arange(64) * (gi + 1)).astype(np.float64)
            out = yield from comm.allreduce(
                data, np.add, members=MEMBERS, hierarchical=True
            )
            yield from comm.barrier(members=MEMBERS)
            vals[comm.rank] = out

        system.run(program, ranks=MEMBERS)
        return system.sim.now, system.sim.events_processed, vals

    now_s, events_s, vals_s = fingerprint("serial")
    for kernel in ("sharded", "sharded:3"):
        now_k, events_k, vals_k = fingerprint(kernel)
        assert (now_k, events_k) == (now_s, events_s), kernel
        for rank in MEMBERS:
            assert (vals_k[rank] == vals_s[rank]).all(), (kernel, rank)
