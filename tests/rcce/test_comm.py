"""Unit tests for communicator splitting (RCCE_comm_split style)."""

import numpy as np
import pytest

from repro.rcce.comm import Communicator, comm_incl, comm_split, comm_world
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


def test_split_by_device():
    """One communicator per device: color = device coordinate."""
    system = VSCCSystem(num_devices=2, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)
    got = {}

    def program(comm):
        device = system.topology.coords(comm.rank)[2]
        group = yield from comm_split(comm, color=device, key=comm.rank)
        got[comm.rank] = (group.rank, group.size, tuple(group.members[:2]))
        # a barrier inside the group must not involve the other device
        yield from group.barrier()

    system.run(program)
    assert got[0] == (0, 48, (0, 1))
    assert got[48] == (0, 48, (48, 49))
    assert got[95][1] == 48


def test_split_key_orders_members():
    system = VSCCSystem(num_devices=2)
    got = {}

    def program(comm):
        if comm.rank >= 4:
            return
        group = yield from comm_split(
            comm, color=0, key=-comm.rank, group_size=4
        )
        got[comm.rank] = group.rank

    system.run(program, ranks=range(4))
    # reversed key order: global rank 3 becomes group rank 0
    assert got == {0: 3, 1: 2, 2: 1, 3: 0}


def test_negative_color_returns_none():
    system = VSCCSystem(num_devices=2)
    got = {}

    def program(comm):
        if comm.rank >= 3:
            return
        color = -1 if comm.rank == 1 else 0
        group = yield from comm_split(comm, color=color, key=0, group_size=3)
        got[comm.rank] = None if group is None else group.size

    system.run(program, ranks=range(3))
    assert got[1] is None
    assert got[0] == got[2] == 2


def test_group_collectives_and_p2p():
    system = VSCCSystem(num_devices=2)
    got = {}

    def program(comm):
        if comm.rank not in (2, 50, 7):
            return
        group = comm_incl(comm, [2, 50, 7])
        result = yield from group.allreduce(np.array([float(group.rank)]))
        got.setdefault("sum", result[0])
        if group.rank == 0:
            yield from group.send(b"hi", 2)      # group rank 2 = global 7
        elif group.rank == 2:
            data = yield from group.recv(2, 0)
            got["p2p"] = bytes(data)

    system.run(program, ranks=[2, 50, 7])
    assert got["sum"] == pytest.approx(3.0)
    assert got["p2p"] == b"hi"


def test_world_communicator(session):
    comm = session.comm_for(5)
    world = comm_world(comm)
    assert world.size == 48 and world.rank == 5


def test_nonmember_rejected(session):
    comm = session.comm_for(5)
    with pytest.raises(ValueError):
        Communicator(comm, [0, 1, 2])
    with pytest.raises(ValueError):
        Communicator(comm, [5, 5])
