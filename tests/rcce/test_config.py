"""Unit tests for the config file and rank layout."""

import pytest

from repro.rcce.config import RankLayout, SccConfigFile
from repro.scc.chip import SCCDevice
from repro.sim.engine import Simulator


def make_config(*cores_per_device):
    return SccConfigFile(tuple(tuple(c) for c in cores_per_device))


def test_config_from_booted_devices():
    sim = Simulator()
    devices = [SCCDevice(sim, device_id=i) for i in range(2)]
    devices[0].boot()
    devices[1].boot(failed_cores=[7, 30])
    config = SccConfigFile.from_devices(devices)
    assert config.total_cores == 48 + 46
    assert 7 not in config.cores_per_device[1]


def test_config_text_roundtrip():
    config = make_config(range(48), [0, 2, 40])
    text = config.to_text()
    assert SccConfigFile.from_text(text) == config


def test_config_rejects_duplicates():
    with pytest.raises(ValueError):
        make_config([1, 1, 2])


def test_linear_rank_mapping_across_devices():
    """§3: ranks continue linearly onto the next device."""
    layout = RankLayout.from_config(make_config(range(48), range(48)))
    assert layout.num_ranks == 96
    assert layout.placement(0) == (0, 0)
    assert layout.placement(47) == (0, 47)
    assert layout.placement(48) == (1, 0)
    assert layout.rank_of(1, 5) == 53


def test_descending_core_order():
    """The SCC quirk: cores sorted descending by id (§3)."""
    layout = RankLayout.from_config(make_config(range(4)), order="descending")
    assert [layout.placement(r)[1] for r in range(4)] == [3, 2, 1, 0]


def test_failed_cores_skipped_in_ranks():
    """§4: the regenerated configuration file skips silent failures."""
    layout = RankLayout.from_config(make_config([0, 1, 3], [0]))
    assert layout.num_ranks == 4
    assert layout.placement(2) == (0, 3)
    assert layout.placement(3) == (1, 0)
    with pytest.raises(ValueError):
        layout.rank_of(0, 2)


def test_same_device_and_ranks_on_device():
    layout = RankLayout.from_config(make_config(range(2), range(2)))
    assert layout.same_device(0, 1)
    assert not layout.same_device(1, 2)
    assert layout.ranks_on_device(1) == [2, 3]


def test_traffic_recording():
    layout = RankLayout.from_config(make_config(range(4)))
    layout.record_traffic(0, 1, 100)
    layout.record_traffic(0, 1, 50)
    assert layout.traffic[(0, 1)] == 150


def test_empty_layout_rejected():
    with pytest.raises(ValueError):
        RankLayout([])
