"""Unit tests for the SF flag layout and counter predicates."""

import pytest

from repro.rcce.config import RankLayout, SccConfigFile
from repro.rcce.flags import FlagLayout, MAX_RANKS, SEQ_MOD, reached
from repro.scc.params import SCCParams


@pytest.fixture
def flags():
    config = SccConfigFile((tuple(range(48)), tuple(range(48))))
    return FlagLayout(RankLayout.from_config(config), SCCParams())


def test_flag_addresses_in_sf_region(flags):
    params = SCCParams()
    for addr in (flags.sent(0, 95), flags.ready(95, 0), flags.misc(3, 15)):
        assert params.mpb_payload_bytes <= addr.offset < params.lmb_bytes_per_core


def test_sent_and_ready_never_collide(flags):
    seen = set()
    for owner in (0, 50):
        for peer in (0, 1, 95):
            for addr in (flags.sent(owner, peer), flags.ready(owner, peer)):
                key = (addr.device, addr.core, addr.offset)
                assert key not in seen
                seen.add(key)
    for slot in range(16):
        addr = flags.misc(0, slot)
        key = (addr.device, addr.core, addr.offset)
        assert key not in seen
        seen.add(key)


def test_flag_owned_by_owner_rank(flags):
    addr = flags.sent(50, 3)
    assert (addr.device, addr.core) == (1, 2)  # rank 50 = device 1 core 2


def test_capacity_limit():
    config = SccConfigFile((tuple(range(48)),) * 6)
    with pytest.raises(ValueError, match="capacity"):
        FlagLayout(RankLayout.from_config(config), SCCParams())
    assert MAX_RANKS == 248


def test_next_seq_cycles_skipping_zero():
    seq = 0
    seen = []
    for _ in range(SEQ_MOD + 3):
        seq = FlagLayout.next_seq(seq)
        seen.append(seq)
    assert 0 not in seen
    assert seen[0] == 1 and seen[SEQ_MOD] == 1  # wrapped


def test_reached_predicate_with_wrap():
    pred = reached(target=253, max_lead=4)
    assert pred(253)
    assert pred(254)
    assert pred(1)      # wrapped lead
    assert not pred(252)  # behind
    assert not pred(0)    # never signalled
    with pytest.raises(ValueError):
        reached(0)


def test_reached_at_the_254_wrap_boundary():
    """Exhaustive window check at target=254 (the wrap point) for the
    default max_lead=8: exactly 254, 1, 2, …, 7 are in the lead window."""
    pred = reached(target=SEQ_MOD)  # max_lead=8
    accepted = {value for value in range(0, SEQ_MOD + 1) if pred(value)}
    assert accepted == {254, 1, 2, 3, 4, 5, 6, 7}


def test_reached_window_is_half_open():
    """max_lead values past target is the first *rejected* lead."""
    for target in (1, 250, SEQ_MOD):
        for max_lead in (1, 4, 8):
            pred = reached(target, max_lead=max_lead)
            value = target
            for lead in range(max_lead):
                assert pred(value), (target, max_lead, lead, value)
                value = FlagLayout.next_seq(value)
            assert not pred(value), (target, max_lead, value)


def test_reached_rejects_never_signalled_across_targets():
    for target in (1, 2, 247, 253, SEQ_MOD):
        assert not reached(target)(0)


def test_reached_target_bounds():
    with pytest.raises(ValueError):
        reached(SEQ_MOD + 1)
    with pytest.raises(ValueError):
        reached(-3)


def test_misc_slot_bounds(flags):
    with pytest.raises(ValueError):
        flags.misc(0, 16)
