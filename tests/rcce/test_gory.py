"""Unit tests for the gory one-sided layer."""

import pytest

from repro.rcce.api import RcceOptions
from repro.rcce.session import RcceSession


@pytest.fixture
def gory_session():
    return RcceSession(options=RcceOptions(user_mpb_bytes=2048))


def test_put_get_with_flag_sync(gory_session):
    got = {}

    def program(comm):
        flag = comm.gory.flag_alloc()
        buf = comm.malloc(128)
        if comm.rank == 0:
            yield from comm.gory.put(b"gory payload", 7, buf)
            yield from comm.gory.flag_write(7, flag, 1)
        elif comm.rank == 7:
            yield from comm.gory.wait_until(flag, 1)
            data = yield from comm.gory.get(7, buf, 12)
            got["data"] = bytes(data)

    gory_session.run(program, ranks=[0, 7])
    assert got["data"] == b"gory payload"


def test_flag_read(gory_session):
    got = {}

    def program(comm):
        flag = comm.gory.flag_alloc()
        if comm.rank == 0:
            yield from comm.gory.flag_write(1, flag, 9)
            # allow delivery
            yield from comm.env.compute(cycles=200)
            got["value"] = yield from comm.gory.flag_read(1, flag)

    gory_session.run(program, ranks=[0])
    assert got["value"] == 9


def test_put_outside_user_area_rejected(gory_session):
    def program(comm):
        yield from comm.gory.put(b"x" * 64, 1, 2048 - 16)

    with pytest.raises(Exception):
        gory_session.run(program, ranks=[0])


def test_flag_free_allows_reuse(gory_session):
    def program(comm):
        a = comm.gory.flag_alloc()
        comm.gory.flag_free(a)
        b = comm.gory.flag_alloc()
        assert a == b
        return
        yield

    gory_session.run(program, ranks=[0])
