"""Unit tests for the two-level collectives (repro.rcce.hierarchical)."""

import numpy as np
import pytest

from repro.rcce.api import RcceOptions
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


@pytest.fixture(scope="module")
def system():
    return VSCCSystem(num_devices=3, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)


# -- GroupPlan: the communication-free decomposition ---------------------------


def plan_for(system, members, root=None):
    """Build each member's GroupPlan without running any program."""
    from repro.rcce.hierarchical import GroupPlan

    return {
        rank: GroupPlan(
            system.comm_for(rank),
            None,
            members,
            root=root,
        )
        for rank in members
    }


def test_plan_splits_by_device_in_first_appearance_order(system):
    members = [100, 2, 50, 7, 144 - 1, 60]  # devices 2, 0, 1, 0, 2, 1
    plans = plan_for(system, members)
    for plan in plans.values():
        assert list(plan.groups) == [2, 0, 1]
        assert plan.groups[2] == [100, 143]
        assert plan.groups[0] == [2, 7]
        assert plan.groups[1] == [50, 60]
        assert plan.num_devices == 3


def test_plan_leaders_are_first_members(system):
    members = [100, 2, 50, 7, 143, 60]
    plans = plan_for(system, members)
    for plan in plans.values():
        assert plan.leaders == [100, 2, 50]
    assert plans[100].is_leader and plans[2].is_leader and plans[50].is_leader
    assert not plans[7].is_leader
    assert plans[7].my_leader == 2
    assert plans[143].my_leader == 100


def test_plan_root_leads_its_own_device(system):
    members = [100, 2, 50, 7, 143, 60]
    plans = plan_for(system, members, root=members.index(7))
    for plan in plans.values():
        # Device 0's leader is the root (rank 7), not first-member 2.
        assert plan.leaders == [100, 7, 50]
    assert plans[7].is_leader
    assert not plans[2].is_leader
    assert plans[2].my_leader == 7


def test_plan_identical_across_members(system):
    """Every participant derives the same plan — no communication."""
    members = [95, 0, 48, 1, 96]
    plans = plan_for(system, members, root=2)
    first = plans[members[0]]
    for plan in plans.values():
        assert list(plan.groups) == list(first.groups)
        assert plan.groups == first.groups
        assert plan.leaders == first.leaders


def test_plan_single_device_degenerates(system):
    plans = plan_for(system, [5, 1, 9])
    for plan in plans.values():
        assert plan.num_devices == 1
        assert plan.leaders == [5]
        assert plan.sub == [5, 1, 9]


# -- topology helpers ----------------------------------------------------------


def test_device_of_matches_placement(system):
    for rank in (0, 47, 48, 95, 96, 143):
        assert system.topology.device_of(rank) == system.layout.placement(rank)[0]


def test_device_groups_preserve_input_order(system):
    groups = system.topology.device_groups([50, 49, 0, 51, 1])
    assert groups == {1: [50, 49, 51], 0: [0, 1]}
    assert list(groups) == [1, 0]


# -- crossing counts: the design's core claim ----------------------------------


def _cross_pairs(system, program, members):
    before = {
        pair
        for pair in system.layout.traffic
        if system.topology.is_cross_device(*pair)
    }
    system.run(program, ranks=members)
    after = {
        pair
        for pair in system.layout.traffic
        if system.topology.is_cross_device(*pair)
    }
    return after - before


@pytest.mark.parametrize("hier,expected", [(False, "many"), (True, "leaders")])
def test_allreduce_crossing_routes(hier, expected):
    """The hierarchical allreduce touches PCIe only on leader routes:
    2·(num_devices−1) directed pairs. The flat tree crosses on more."""
    system = VSCCSystem(
        num_devices=3, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA
    )
    members = list(range(144))

    def program(comm):
        yield from comm.allreduce(
            np.arange(8.0), np.add, members=members, hierarchical=hier
        )

    pairs = _cross_pairs(system, program, members)
    leader_routes = 2 * (3 - 1)
    if expected == "leaders":
        assert len(pairs) == leader_routes
        # ... and every one is an edge between device leaders (0, 48, 96).
        leaders = {0, 48, 96}
        assert all(src in leaders and dst in leaders for src, dst in pairs)
    else:
        assert len(pairs) > leader_routes


def test_barrier_token_rides_direct_fastpath():
    """Leader-phase barrier tokens are one byte — under the threshold
    policy they must dispatch onto the direct flag fast-path (the §3.3
    sub-threshold transport), never a bulk scheme."""
    from repro.vscc.policy import ThresholdPolicy

    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    members = [0, 1, 48, 49]

    def program(comm):
        yield from comm.barrier(members=members, hierarchical=True)

    system.run(program, ranks=members)
    selections = system.selector.selections
    assert selections.get("direct-small", 0) > 0
    assert selections.get("vdma", 0) in (0, None) or "vdma" not in selections


def test_allreduce_bulk_rides_vdma():
    """Bulk leader-phase reduce payloads outgrow the comm buffer and
    must dispatch onto the vDMA transport under the threshold policy."""
    from repro.vscc.policy import ThresholdPolicy

    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    members = [0, 1, 48, 49]

    def program(comm):
        yield from comm.allreduce(
            np.arange(4096.0), np.add, members=members, hierarchical=True
        )

    system.run(program, ranks=members)
    vdma = [n for n in system.selector.selections if "vdma" in n]
    assert vdma, f"expected vDMA selections, got {system.selector.selections}"


# -- instrumentation -----------------------------------------------------------


def test_coll_metrics_emitted(system):
    system.obs.enabled = True
    try:
        members = [0, 50, 100]

        def program(comm):
            yield from comm.barrier(members=members, hierarchical=True)
            yield from comm.allreduce(
                np.arange(4.0), np.add, members=members, hierarchical=False
            )

        metrics = system.run(program, ranks=members).metrics
    finally:
        system.obs.enabled = False
    assert metrics["coll.calls{impl=hier,op=barrier}"] == 3
    assert metrics["coll.calls{impl=flat,op=allreduce}"] == 3
    assert metrics["coll.latency_ns.count{impl=hier,op=barrier}"] == 3


def test_coll_trace_spans(system, tmp_path):
    import json

    members = [0, 50, 100]

    def program(comm):
        yield from comm.allreduce(
            np.arange(4.0), np.add, members=members, hierarchical=True
        )

    result = system.run(program, ranks=members, trace_json=tmp_path / "t.json")
    doc = json.loads(result.trace_path.read_text())
    spans = [
        e for e in doc["traceEvents"]
        if e.get("name") == "coll.allreduce.hier" and e["ph"] == "X"
    ]
    assert {e["tid"] for e in spans} == set(members)
    assert all(e["dur"] > 0 for e in spans)


def test_session_level_default():
    """RcceOptions(hierarchical_collectives=True) flips the default;
    per-call hierarchical=False still overrides it."""
    from repro.rcce import collectives, hierarchical
    from repro.rcce.api import Rcce

    system = VSCCSystem(
        num_devices=2,
        scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA,
        options=RcceOptions(hierarchical_collectives=True),
    )
    comm = system.comm_for(0)
    assert comm._coll_impl(None)[0] is hierarchical
    assert comm._coll_impl(False)[0] is collectives
    assert comm._coll_impl(True)[0] is hierarchical

    got = {}

    def program(c):
        out = yield from c.allreduce(np.arange(3.0), np.add, members=[0, 48])
        got[c.rank] = out

    system.run(program, ranks=[0, 48])
    assert (got[0] == got[48]).all()
    assert (got[0] == np.arange(3.0) * 2).all()


def test_root_validation(system):
    from repro.sim.errors import ProcessFailed

    def program(comm):
        yield from comm.bcast(b"x", 1, 5, members=[0, 50], hierarchical=True)

    with pytest.raises(ProcessFailed, match="root 5 out of range"):
        system.run(program, ranks=[0])
