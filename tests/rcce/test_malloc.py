"""Unit tests for the symmetric MPB allocator."""

import pytest

from repro.rcce.malloc import MpbAllocator, OutOfMpbError


def test_alignment_and_first_fit():
    alloc = MpbAllocator(1024)
    a = alloc.malloc(10)
    b = alloc.malloc(33)
    assert a == 0
    assert b == 32          # rounded to the cache line
    assert alloc.bytes_allocated == 32 + 64


def test_free_and_coalesce():
    alloc = MpbAllocator(256)
    a = alloc.malloc(64)
    b = alloc.malloc(64)
    c = alloc.malloc(64)
    alloc.free(a)
    alloc.free(b)
    # coalesced back: a 128 B request fits in the front again
    d = alloc.malloc(128)
    assert d == 0


def test_exhaustion_raises():
    alloc = MpbAllocator(128)
    alloc.malloc(128)
    with pytest.raises(OutOfMpbError):
        alloc.malloc(1)


def test_double_free_rejected():
    alloc = MpbAllocator(128)
    a = alloc.malloc(32)
    alloc.free(a)
    with pytest.raises(ValueError):
        alloc.free(a)


def test_symmetry_across_ranks():
    """Identical call sequences yield identical offsets (the property
    RCCE's one-sided addressing relies on)."""
    seq = [(("m", 40)), ("m", 96), ("f", 0), ("m", 33)]
    outcomes = []
    for _ in range(2):
        alloc = MpbAllocator(512)
        offsets = []
        for op, arg in seq:
            if op == "m":
                offsets.append(alloc.malloc(arg))
            else:
                alloc.free(offsets[arg])
        outcomes.append(offsets)
    assert outcomes[0] == outcomes[1]


def test_validation():
    with pytest.raises(ValueError):
        MpbAllocator(100)  # not line multiple
    with pytest.raises(ValueError):
        MpbAllocator(256).malloc(0)
