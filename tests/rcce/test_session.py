"""Unit tests for the single-device session."""

import pytest

from repro.rcce.session import RcceSession


def test_48_ranks_by_default(session):
    assert session.num_ranks == 48


def test_failed_cores_reduce_ranks():
    session = RcceSession(failure_prob=0.25, seed=11)
    assert session.num_ranks < 48
    # config records exactly the live cores
    assert session.config.total_cores == session.num_ranks


def test_comm_for_is_cached(session):
    assert session.comm_for(3) is session.comm_for(3)


def test_run_collects_results(session):
    def program(comm):
        yield from comm.env.compute(cycles=10)
        return comm.rank * 2

    result = session.run(program, ranks=[1, 5])
    assert result.results == {1: 2, 5: 10}
    assert result.elapsed_ns > 0
    assert result[5] == 10


def test_launch_shim_warns_and_matches_run(session):
    def program(comm):
        yield from comm.env.compute(cycles=10)
        return comm.rank * 2

    with pytest.warns(DeprecationWarning, match="repro 1.2"):
        results = session.launch(program, ranks=[1, 5])
    assert results == {1: 2, 5: 10}


def test_descending_core_order():
    session = RcceSession(core_order="descending")
    assert session.layout.placement(0) == (0, 47)
