"""Unit tests for the default transport protocol details."""

import numpy as np
import pytest

from repro.rcce.api import RcceOptions
from repro.rcce.session import RcceSession
from repro.rcce.transport import DefaultGetTransport, OnChipSelector


def test_selector_picks_default_below_threshold():
    session = RcceSession(options=RcceOptions(pipelined=True))
    comm = session.comm_for(0)
    small = comm.selector.select(comm, 1, 1024)
    large = comm.selector.select(comm, 1, 65536)
    assert small.name == "rcce-default"
    assert large.name == "ircce-pipelined"


def test_selector_without_pipelining_always_default():
    session = RcceSession()
    comm = session.comm_for(0)
    assert comm.selector.select(comm, 1, 10 ** 6).name == "rcce-default"


def test_onchip_selector_rejects_cross_device():
    from repro.rcce.config import RankLayout, SccConfigFile

    config = SccConfigFile((tuple(range(2)), tuple(range(2))))
    layout = RankLayout.from_config(config)
    session = RcceSession()
    comm = session.comm_for(0)
    comm.layout = layout
    with pytest.raises(RuntimeError, match="VSCCSystem"):
        comm.selector.select(comm, 2, 100)


def test_invalid_cache_control():
    with pytest.raises(ValueError):
        DefaultGetTransport(cache_control="bogus")


def test_sender_stages_in_own_buffer(session):
    """Local-put discipline: the sender only writes its own MPB."""
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(b"\xab" * 64, 1)
        else:
            yield from comm.recv(64, 0)

    session.run(program, ranks=[0, 1])
    env0 = session.device.core(0)
    env1 = session.device.core(1)
    assert env0.stats["mpb_bytes_written"] >= 64  # chunk + flags
    # receiver never wrote payload bytes to MPB, only flags
    assert env1.stats["mpb_bytes_written"] < 64
