"""Unit tests for the L1 MPBT model."""

from repro.scc.cache import L1MpbtCache


def test_miss_then_hit():
    l1 = L1MpbtCache()
    assert not l1.lookup(("mpb", 0, 10))
    assert l1.lookup(("mpb", 0, 10))
    assert l1.hits == 1 and l1.misses == 1


def test_cl1invmb_drops_everything():
    l1 = L1MpbtCache()
    for line in range(8):
        l1.lookup(("mpb", 0, line))
    assert l1.cl1invmb() == 8
    assert len(l1) == 0
    assert not l1.lookup(("mpb", 0, 3))


def test_capacity_eviction():
    l1 = L1MpbtCache()
    for line in range(L1MpbtCache.CAPACITY_LINES + 10):
        l1.lookup(("mpb", 0, line))
    assert len(l1) == L1MpbtCache.CAPACITY_LINES
    assert not l1.contains(("mpb", 0, 0))  # FIFO: oldest gone
    assert l1.contains(("mpb", 0, L1MpbtCache.CAPACITY_LINES + 9))


def test_tags_distinguish_devices():
    l1 = L1MpbtCache()
    l1.lookup(("mpb", 0, 7))
    assert not l1.lookup(("mpb", 1, 7))
