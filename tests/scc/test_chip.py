"""Unit tests for SCCDevice boot and addressing."""

import numpy as np
import pytest

from repro.scc.chip import SCCDevice
from repro.sim.engine import Simulator


def test_boot_all_cores():
    dev = SCCDevice(Simulator())
    assert not dev.booted
    available = dev.boot()
    assert available == list(range(48))
    assert dev.booted


def test_unbooted_access_raises():
    dev = SCCDevice(Simulator())
    with pytest.raises(RuntimeError):
        dev.available_cores


def test_forced_core_failures():
    dev = SCCDevice(Simulator())
    available = dev.boot(failed_cores=[0, 13, 47])
    assert 13 not in available
    assert len(available) == 45


def test_random_failures_reproducible():
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    dev_a = SCCDevice(Simulator())
    dev_b = SCCDevice(Simulator())
    assert dev_a.boot(failure_prob=0.2, rng=rng_a) == dev_b.boot(
        failure_prob=0.2, rng=rng_b
    )


def test_at_least_one_core_survives():
    dev = SCCDevice(Simulator())
    available = dev.boot(failed_cores=list(range(48)))
    assert len(available) == 1


def test_failure_prob_validation():
    dev = SCCDevice(Simulator())
    with pytest.raises(ValueError):
        dev.boot(failure_prob=1.5)


def test_core_xyz():
    dev = SCCDevice(Simulator(), device_id=3)
    assert dev.core_xyz(0) == (0, 0, 3)
    assert dev.core_xyz(47) == (5, 3, 3)
