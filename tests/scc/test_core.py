"""Unit tests for CoreEnv memory operations and timing."""

import numpy as np
import pytest

from repro.scc.chip import SCCDevice
from repro.scc.mpb import MpbAddr
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


@pytest.fixture
def dev():
    sim = Simulator()
    device = SCCDevice(sim)
    device.boot()
    return device


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.result


def test_local_write_then_read(dev):
    env = dev.core(0)

    def prog():
        yield from env.mpb_write(env.local_addr(0), b"payload!")
        data = yield from env.mpb_read(env.local_addr(0), 8)
        return bytes(data)

    assert run(dev.sim, prog()) == b"payload!"


def test_remote_read_slower_than_local(dev):
    def timed(env, addr):
        sim = env.sim
        t0 = sim.now
        yield from env.cl1invmb()
        yield from env.mpb_read(addr, 32)
        return sim.now - t0

    local = run(dev.sim, timed(dev.core(0), MpbAddr(0, 1, 0)))
    sim2 = Simulator()
    dev2 = SCCDevice(sim2)
    dev2.boot()
    remote = run(sim2, timed(dev2.core(0), MpbAddr(0, 47, 0)))
    assert remote > 2 * local


def test_l1_hit_discount_until_invalidate(dev):
    env = dev.core(0)

    def prog():
        yield from env.mpb_write(env.local_addr(0), b"\x01" * 32)
        t0 = dev.sim.now
        yield from env.mpb_read(env.local_addr(0), 32)
        cold = dev.sim.now - t0
        t0 = dev.sim.now
        yield from env.mpb_read(env.local_addr(0), 32)
        warm = dev.sim.now - t0
        yield from env.cl1invmb()
        t0 = dev.sim.now
        yield from env.mpb_read(env.local_addr(0), 32)
        again_cold = dev.sim.now - t0
        return cold, warm, again_cold

    cold, warm, again_cold = run(dev.sim, prog())
    assert warm < cold
    assert again_cold == pytest.approx(cold)


def test_remote_write_commits_after_delay(dev):
    env = dev.core(0)
    target = MpbAddr(0, 47, 0)
    snapshots = {}

    def writer():
        yield from env.mpb_write(target, b"\xff" * 32)
        # issue returned: data may not be visible yet (posted write)
        snapshots["at_issue"] = int(dev.mpb.read_byte(target))

    dev.sim.spawn(writer())
    dev.sim.run()
    snapshots["final"] = int(dev.mpb.read_byte(target))
    assert snapshots["final"] == 0xFF
    assert snapshots["at_issue"] == 0  # not yet arrived at issue time


def test_flag_set_and_wait(dev):
    flag = MpbAddr(0, 10, dev.params.mpb_payload_bytes)
    done = {}

    def waiter():
        yield from dev.core(10).wait_flag(flag, 7)
        done["t"] = dev.sim.now

    def setter():
        yield from dev.core(0).compute(cycles=1000)
        yield from dev.core(0).set_flag(flag, 7)

    dev.sim.spawn(waiter())
    dev.sim.spawn(setter())
    dev.sim.run()
    assert done["t"] > dev.params.core_clock.cycles(1000)


def test_wait_flag_rejects_remote_flag(dev):
    with pytest.raises(SimulationError):
        gen = dev.core(0).wait_flag(MpbAddr(0, 47, 8000), 1)
        dev.sim.spawn(gen)
        dev.sim.run()


def test_wait_flag_timeout(dev):
    flag = dev.core(0).local_addr(8000)

    def waiter():
        yield from dev.core(0).wait_flag(flag, 1, timeout_ns=1e6)

    # A poller that keeps the queue alive but never sets the flag value.
    def noise():
        for _ in range(300):
            yield from dev.core(1).compute(cycles=5000)
            dev.mpb.write_byte(flag, 0)  # wrong value, wakes the watcher

    dev.sim.spawn(waiter())
    dev.sim.spawn(noise())
    with pytest.raises(Exception):
        dev.sim.run()


def test_compute_flops(dev):
    env = dev.core(0)

    def prog():
        t0 = dev.sim.now
        yield from env.compute_flops(1e6, 0.15)
        return dev.sim.now - t0

    elapsed = run(dev.sim, prog())
    # 1e6 flops at 0.15 flop/cycle at 533 MHz
    assert elapsed == pytest.approx(1e6 / 0.15 / 533e6 * 1e9, rel=1e-6)


def test_offdie_access_without_fabric_raises(dev):
    def prog():
        yield from dev.core(0).mpb_read(MpbAddr(1, 0, 0), 32)

    dev.sim.spawn(prog())
    with pytest.raises(Exception):
        dev.sim.run()


def test_stats_accumulate(dev):
    env = dev.core(0)

    def prog():
        yield from env.private_read(1024)
        yield from env.mpb_write(env.local_addr(0), b"\x01" * 64)
        yield from env.set_flag(env.local_addr(7700), 1)

    run(dev.sim, prog())
    assert env.stats["private_bytes"] == 1024
    assert env.stats["mpb_bytes_written"] == 64
    assert env.stats["flag_sets"] == 1
