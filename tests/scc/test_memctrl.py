"""Unit tests for memory-controller contention."""

import pytest

from repro.scc.chip import SCCDevice
from repro.sim.engine import Simulator


@pytest.fixture
def dev():
    sim = Simulator()
    device = SCCDevice(sim)
    device.boot()
    return device


def test_quadrant_assignment(dev):
    mc = dev.memctrl
    assert mc.controller_of(0) == 0            # tile (0,0): west/south
    assert mc.controller_of(10) == 1           # tile (5,0): east/south
    assert mc.controller_of(37) == 2           # tile (0,3): west/north
    assert mc.controller_of(47) == 3           # tile (5,3): east/north
    # all four quadrants hold 12 cores each
    counts = [0] * 4
    for core in range(48):
        counts[mc.controller_of(core)] += 1
    assert counts == [12, 12, 12, 12]


def test_single_core_unaffected(dev):
    """Uncontended access keeps the calibrated per-line cost."""
    sim = dev.sim
    env = dev.core(0)

    def prog():
        t0 = sim.now
        yield from env.private_read(32 * 100)
        return sim.now - t0

    proc = sim.spawn(prog())
    sim.run()
    assert proc.result == pytest.approx(100 * dev.params.dram_read_line_ns())


def test_many_cores_contend(dev):
    """Twelve cores streaming in one quadrant exceed ~4 cores' worth of
    controller bandwidth and slow down; four cores do not."""
    sim = dev.sim
    quadrant_cores = [c for c in range(48) if dev.memctrl.controller_of(c) == 0]
    times = {}

    def prog(core_id):
        env = dev.core(core_id)
        t0 = sim.now
        yield from env.private_read(32 * 2000)
        times[core_id] = sim.now - t0

    for core in quadrant_cores:
        sim.spawn(prog(core))
    sim.run()
    solo = 2000 * dev.params.dram_read_line_ns()
    slowest = max(times.values())
    assert slowest > 1.5 * solo  # 12 streams into ~4 streams of bandwidth


def test_quadrants_are_independent(dev):
    """One core per quadrant: no cross-quadrant interference."""
    sim = dev.sim
    times = {}

    def prog(core_id):
        env = dev.core(core_id)
        t0 = sim.now
        yield from env.private_read(32 * 500)
        times[core_id] = sim.now - t0

    for core in (0, 10, 37, 47):
        sim.spawn(prog(core))
    sim.run()
    solo = 500 * dev.params.dram_read_line_ns()
    assert all(t == pytest.approx(solo) for t in times.values())


def test_bytes_served_accounting(dev):
    sim = dev.sim

    def prog():
        yield from dev.core(0).private_write(4096)

    sim.spawn(prog())
    sim.run()
    assert dev.memctrl.bytes_served()[0] == 4096
