"""Unit tests for XY routing."""

import pytest

from repro.scc.mesh import XYRouter
from repro.scc.params import SCCParams


@pytest.fixture
def router():
    return XYRouter(SCCParams())


def test_path_is_x_first_then_y(router):
    params = SCCParams()
    path = router.path(params.tile_at(0, 0), params.tile_at(3, 2))
    assert path[0] == (0, 0) and path[-1] == (3, 2)
    xs = [p[0] for p in path]
    ys = [p[1] for p in path]
    # x settles before y moves
    assert ys[: xs.index(3) + 1] == [0] * (xs.index(3) + 1)


def test_path_length_matches_hops(router):
    params = SCCParams()
    for a in (0, 7, 23):
        for b in (0, 5, 12, 23):
            path = router.path(a, b)
            assert len(path) - 1 == router.hops(a, b)


def test_account_charges_every_link(router):
    params = SCCParams()
    router.account(params.tile_at(0, 0), params.tile_at(2, 1), 100)
    assert sum(router.link_bytes.values()) == 3 * 100
    ((a, b), n), *_ = router.link_bytes.most_common(1)
    assert n == 100


def test_reset(router):
    router.account(0, 5, 10)
    router.reset()
    assert not router.link_bytes
