"""Unit tests for the on-chip memory (MPB/SF) with watchpoints."""

import numpy as np
import pytest

from repro.scc.mpb import MPBMemory, MpbAddr
from repro.scc.params import SCCParams
from repro.sim.engine import Simulator


@pytest.fixture
def mem():
    return MPBMemory(Simulator(), SCCParams(), device_id=0)


def test_write_read_roundtrip(mem):
    addr = MpbAddr(0, 5, 128)
    mem.write(addr, b"hello mpb")
    assert bytes(mem.read(addr, 9)) == b"hello mpb"


def test_isolation_between_cores(mem):
    mem.write(MpbAddr(0, 3, 0), b"\xaa" * 64)
    assert mem.read(MpbAddr(0, 4, 0), 64).sum() == 0


def test_span_must_stay_in_lmb(mem):
    with pytest.raises(ValueError):
        mem.read(MpbAddr(0, 0, 8000), 400)
    with pytest.raises(ValueError):
        mem.write(MpbAddr(0, 0, 8192), b"x")
    with pytest.raises(ValueError):
        mem.read(MpbAddr(0, 48, 0), 1)  # no such core


def test_wrong_device_rejected(mem):
    with pytest.raises(ValueError):
        mem.read(MpbAddr(1, 0, 0), 1)


def test_byte_accessors(mem):
    addr = MpbAddr(0, 0, 7700)
    mem.write_byte(addr, 0x5A)
    assert mem.read_byte(addr) == 0x5A


def test_watchpoint_pulses_on_covering_write(mem):
    sim = mem.sim
    seen = []

    def watcher():
        yield mem.watch(MpbAddr(0, 2, 100))
        seen.append(sim.now)

    sim.spawn(watcher())
    sim.call_at(5.0, lambda: mem.write(MpbAddr(0, 2, 96), b"\x01" * 16))
    sim.run()
    assert seen == [5.0]


def test_watchpoint_ignores_other_addresses(mem):
    sim = mem.sim
    seen = []

    def watcher():
        yield mem.watch(MpbAddr(0, 2, 100))
        seen.append(sim.now)

    sim.spawn(watcher(), name="daemon:watch")
    sim.call_at(5.0, lambda: mem.write(MpbAddr(0, 2, 101), b"x"))
    sim.run()
    assert seen == []


def test_numpy_and_bytes_payloads(mem):
    payload = np.arange(32, dtype=np.uint8)
    mem.write(MpbAddr(0, 1, 0), payload)
    assert (mem.read(MpbAddr(0, 1, 0), 32) == payload).all()


def test_read_returns_copy(mem):
    addr = MpbAddr(0, 0, 0)
    mem.write(addr, b"\x01" * 8)
    snapshot = mem.read(addr, 8)
    mem.write(addr, b"\x02" * 8)
    assert snapshot.sum() == 8
