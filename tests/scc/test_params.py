"""Unit tests for the SCC parameter/timing model."""

import pytest

from repro.scc.params import CACHE_LINE, SCCParams


@pytest.fixture
def params():
    return SCCParams()


def test_paper_configuration(params):
    # §4 footnote 4: (core/mesh/memory) = (533/800/800) MHz.
    assert params.core_freq_mhz == 533.0
    assert params.mesh_freq_mhz == 800.0
    assert params.mem_freq_mhz == 800.0
    # 48 P54C cores on 24 tiles, 6x4 mesh.
    assert params.num_cores == 48
    assert params.num_tiles == 24


def test_lmb_split(params):
    # Footnote 5: the 8 kB LMB holds MPB payload plus SF region.
    assert params.lmb_bytes_per_core == 8192
    assert params.mpb_payload_bytes + params.sf_bytes == 8192
    assert params.mpb_payload_bytes % CACHE_LINE == 0


def test_tile_coordinates_roundtrip(params):
    for tile in range(params.num_tiles):
        x, y = params.tile_xy(tile)
        assert params.tile_at(x, y) == tile
        assert 0 <= x < 6 and 0 <= y < 4


def test_cores_share_tiles(params):
    assert params.tile_of_core(0) == params.tile_of_core(1) == 0
    assert params.tile_of_core(46) == params.tile_of_core(47) == 23


def test_hops_metric(params):
    assert params.hops(0, 1) == 0          # same tile
    assert params.hops(0, 10) == 5         # (0,0) -> (5,0)
    assert params.hops(0, 47) == 8         # (0,0) -> (5,3)
    assert params.hops(10, 0) == params.hops(0, 10)


def test_remote_read_costs_about_100_cycles(params):
    # §3: "a communication path in x or y direction has a relatively
    # low latency (~100 core cycles)".
    typical = params.remote_read_ns(4)
    cycles = params.core_clock.to_cycles(typical)
    assert 60 <= cycles <= 150


def test_remote_read_grows_with_distance(params):
    costs = [params.remote_read_ns(h) for h in range(9)]
    assert all(b > a for a, b in zip(costs, costs[1:]))


def test_local_accesses_cheaper_than_remote(params):
    assert params.local_read_ns() < params.remote_read_ns(1)
    assert params.local_read_ns(l1_hit=True) < params.local_read_ns()


def test_validation():
    with pytest.raises(ValueError):
        SCCParams(sf_bytes=8192)
    with pytest.raises(ValueError):
        SCCParams(sf_bytes=100)  # not line multiple
    with pytest.raises(ValueError):
        SCCParams(tiles_x=0)
    with pytest.raises(ValueError):
        SCCParams().tile_at(6, 0)
    with pytest.raises(ValueError):
        SCCParams()._check_core(48)
