"""Unit tests for voltage/frequency domain management."""

import pytest

from repro.scc.chip import SCCDevice
from repro.scc.power import GLOBAL_CLOCK_MHZ, VOLTAGE_LEVELS
from repro.sim.engine import Simulator


@pytest.fixture
def dev():
    sim = Simulator()
    device = SCCDevice(sim)
    device.boot()
    return device


def test_paper_baseline_is_divider_3(dev):
    """533 MHz = 1600 MHz / 3 (§4 footnote 4)."""
    assert dev.power.base_divider == 3
    assert dev.power.frequency_mhz(0) == pytest.approx(533.33, rel=1e-3)
    assert dev.power.clock_scale(0) == 1.0


def test_six_voltage_domains_of_four_tiles(dev):
    power = dev.power
    assert power.num_voltage_domains == 6
    sizes = [len(power.tiles_in_domain(d)) for d in range(6)]
    assert sizes == [4] * 6
    # 2x2 blocks: tiles (0,0),(1,0),(0,1),(1,1) share domain 0
    params = dev.params
    assert {power.voltage_domain(params.tile_at(x, y)) for x in (0, 1) for y in (0, 1)} == {0}


def test_down_clocking_slows_compute_proportionally(dev):
    sim = dev.sim
    env = dev.core(0)

    def timed():
        t0 = sim.now
        yield from env.compute(cycles=100000)
        return sim.now - t0

    base = sim.spawn(timed())
    sim.run()

    def reclock():
        yield from dev.power.set_frequency(0, env.tile, 6)

    sim.spawn(reclock())
    sim.run()
    slow = sim.spawn(timed())
    sim.run()
    assert slow.result == pytest.approx(2 * base.result)


def test_down_clocking_slows_communication(dev):
    sim = dev.sim
    env = dev.core(0)

    def timed():
        t0 = sim.now
        yield from env.mpb_write(env.local_addr(0), b"\x01" * 1024)
        return sim.now - t0

    base = sim.spawn(timed())
    sim.run()

    def reclock():
        yield from dev.power.set_frequency(0, env.tile, 6)

    sim.spawn(reclock())
    sim.run()
    slow = sim.spawn(timed())
    sim.run()
    assert slow.result == pytest.approx(2 * base.result)


def test_frequency_needs_voltage(dev):
    sim = dev.sim

    def overclock():
        yield from dev.power.set_frequency(0, 0, 2)  # 800 MHz at 0.9 V

    sim.spawn(overclock())
    with pytest.raises(Exception, match="V"):
        sim.run()


def test_voltage_ramp_enables_faster_divider(dev):
    sim = dev.sim

    def prog():
        yield from dev.power.set_voltage(0, 0, 1.1)
        yield from dev.power.set_frequency(0, 0, 2)

    sim.spawn(prog())
    sim.run()
    assert dev.power.frequency_mhz(0) == pytest.approx(800.0)
    assert dev.power.voltage_ramps == 1


def test_lowering_voltage_under_fast_tile_refused(dev):
    sim = dev.sim

    def prog():
        yield from dev.power.set_voltage(0, 0, 0.7)  # tiles at divider 3 need 0.9

    sim.spawn(prog())
    with pytest.raises(Exception, match="lower its frequency"):
        sim.run()


def test_divider_bounds(dev):
    with pytest.raises(ValueError):
        list(dev.power.set_frequency(0, 0, 1))
    with pytest.raises(ValueError):
        list(dev.power.set_voltage(0, 0, 0.95))
