"""Unit tests for the system interface."""

from repro.scc.chip import SCCDevice
from repro.scc.sif import SIF_TILE_XY
from repro.sim.engine import Simulator


def test_sif_sits_at_3_0():
    dev = SCCDevice(Simulator())
    assert dev.params.tile_xy(dev.sif.tile) == SIF_TILE_XY == (3, 0)


def test_hops_to_sif():
    dev = SCCDevice(Simulator())
    # core 6/7 are on tile (3,0) itself
    assert dev.sif.hops_from_core(6) == 0
    assert dev.sif.hops_from_core(0) == 3
    assert dev.sif.hops_from_core(47) == 5


def test_unconnected_by_default():
    dev = SCCDevice(Simulator())
    assert not dev.sif.connected


def test_mesh_cost_scales_with_size():
    dev = SCCDevice(Simulator())
    small = dev.sif.mesh_to_sif_ns(0, 32)
    big = dev.sif.mesh_to_sif_ns(0, 4096)
    assert big > small
