"""Unit tests for the test-and-set registers."""

import pytest

from repro.scc.chip import SCCDevice
from repro.sim.engine import Delay, Simulator


def test_try_acquire_and_release():
    sim = Simulator()
    dev = SCCDevice(sim)
    tas = dev.tas
    assert tas.try_acquire(5)
    assert not tas.try_acquire(5)
    tas.release(5)
    assert tas.try_acquire(5)


def test_release_clear_register_raises():
    dev = SCCDevice(Simulator())
    with pytest.raises(RuntimeError):
        dev.tas.release(0)


def test_remote_tas_costs_more_than_local():
    dev = SCCDevice(Simulator())
    local = dev.tas.access_ns(0, 1)   # same tile
    remote = dev.tas.access_ns(0, 47)
    assert remote > local


def test_core_env_spin_lock():
    sim = Simulator()
    dev = SCCDevice(sim)
    dev.boot()
    order = []

    def prog(core_id, hold_ns):
        env = dev.core(core_id)
        yield from env.tas_acquire(0)
        order.append(("in", core_id, sim.now))
        yield Delay(hold_ns)
        yield from env.tas_release(0)

    sim.spawn(prog(2, 500.0))
    sim.spawn(prog(10, 100.0))
    sim.run()
    assert [c for _s, c, _t in order] == [2, 10]
    assert order[1][2] > 500.0  # second waited for the hold
