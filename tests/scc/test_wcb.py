"""Unit tests for the write-combining buffer."""

import pytest

from repro.scc.wcb import WriteCombineBuffer


def test_fuses_stores_within_one_line():
    wcb = WriteCombineBuffer()
    # Three 8 B stores in one 32 B block (the vDMA register layout).
    flushed = []
    flushed += wcb.store(("mmio", 0), 0, 8)
    flushed += wcb.store(("mmio", 0), 8, 8)
    flushed += wcb.store(("mmio", 0), 16, 8)
    assert flushed == []  # still combining
    final = wcb.flush()
    assert final is not None and final.nbytes == 24
    assert wcb.flushes == 1


def test_new_line_flushes_previous():
    wcb = WriteCombineBuffer()
    wcb.store(("mpb", 0), 0, 8)
    flushed = wcb.store(("mpb", 0), 40, 8)  # different line
    assert len(flushed) == 1 and flushed[0].nbytes == 8


def test_full_line_self_flushes():
    wcb = WriteCombineBuffer()
    flushed = wcb.store(("mpb", 0), 0, 32)
    assert len(flushed) == 1
    assert flushed[0].nbytes == 32
    assert wcb.open_tag is None


def test_multi_line_store_flushes_each_line():
    wcb = WriteCombineBuffer()
    flushed = wcb.store(("mpb", 0), 0, 96)
    assert len(flushed) == 3
    assert sum(f.nbytes for f in flushed) == 96


def test_spaces_do_not_alias():
    wcb = WriteCombineBuffer()
    wcb.store(("mpb", 0), 0, 8)
    flushed = wcb.store(("mmio", 0), 0, 8)  # same line number, other space
    assert len(flushed) == 1


def test_flush_empty_returns_none():
    assert WriteCombineBuffer().flush() is None


def test_invalid_size():
    with pytest.raises(ValueError):
        WriteCombineBuffer().store(("mpb", 0), 0, 0)
