"""Shared fixtures for the service-level test harness.

Three layers of testability, cheapest first:

* :class:`FakeClock` + bare :class:`~repro.serve.core.ServeCore` — the
  whole lifecycle state machine with no pool, no asyncio and no real
  time; tests drive dispatch and outcomes by hand (``test_core``,
  ``test_properties``).
* ``run_async`` + inline pool — real asyncio service, thread workers,
  cooperative kills (``test_service``, ``test_env_matrix``).
* process pool — real forked workers and SIGKILL chaos
  (``test_chaos``).

``run_async`` exists because the suite must not depend on a pytest
asyncio plugin: each async test is a plain sync function that owns one
event loop for its whole scenario.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import ServeCore


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        assert dt >= 0
        self.now += dt
        return self.now


def run_async(coro, timeout: float = 120.0):
    """Run one async test scenario to completion on a fresh loop."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(bounded())


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def core(clock) -> ServeCore:
    return ServeCore(clock=clock)
