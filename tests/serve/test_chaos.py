"""Chaos harness: forked workers SIGKILLed mid-job.

The acceptance bar of the service layer: under repeated worker murder,
every job reaches exactly one terminal state (no lost jobs, no double
results, no starvation), retry budgets are honored, slots respawn, and
the jobs that do complete still produce their exact deterministic
fingerprints — a killed-and-retried simulation is bit-identical to an
undisturbed one.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.serve import JobSpec, SimService

from .conftest import run_async

# ~0.5 s of wall work per attempt on this container: long enough to be
# killed mid-run reliably, short enough to retry several times.
MEDIUM_SPIN = {"steps": 800_000, "step_ns": 10.0}


def spec(tenant="t", params=MEDIUM_SPIN, **kw):
    kw.setdefault("max_attempts", 5)
    kw.setdefault("progress_every_events", 50_000)
    return JobSpec(workload="spin", tenant=tenant, params=dict(params), **kw)


async def wait_started(handle):
    async for event in handle.events():
        if event["type"] == "started":
            return event


class TestSingleKill:
    def test_kill_mid_job_retries_to_completion(self):
        async def scenario():
            async with SimService(workers=1, pool="process") as service:
                handle = await service.submit(spec())
                started = await wait_started(handle)
                service.chaos_kill_worker(int(started["worker"]))
                result = await handle.result(timeout=60)
                assert result.ok
                assert result.attempts == 2
                assert result.sim_now_ns == pytest.approx(8_000_000.0)
                types = [e["type"] for e in service.event_log]
                assert types.count("retrying") == 1
                assert types.count("result") == 1

        run_async(scenario())

    def test_kill_until_budget_exhausted(self):
        async def scenario():
            async with SimService(workers=1, pool="process") as service:
                handle = await service.submit(spec(max_attempts=2))
                await wait_started(handle)
                service.chaos_kill_worker(0)
                # second attempt: wait for its start, kill again
                while service.core.jobs[handle.job_id].attempts < 2:
                    await asyncio.sleep(0.05)
                service.chaos_kill_worker(0)
                result = await handle.result(timeout=60)
                assert result.state == "failed"
                assert result.error["type"] == "WorkerDied"
                assert result.attempts == 2

        run_async(scenario())

    def test_kill_idle_worker_is_harmless(self):
        async def scenario():
            async with SimService(workers=1, pool="process") as service:
                service.chaos_kill_worker(0)
                await asyncio.sleep(0.2)  # let the exit + respawn land
                handle = await service.submit(
                    spec(params={"steps": 1000, "step_ns": 10.0})
                )
                result = await handle.result(timeout=60)
                assert result.ok and result.attempts == 1

        run_async(scenario())


class TestChaosFleet:
    def test_every_job_reaches_exactly_one_terminal_state(self):
        async def scenario():
            rng = random.Random(1234)
            async with SimService(workers=2, pool="process") as service:
                handles = [
                    await service.submit(spec(tenant=f"tenant{i % 3}"))
                    for i in range(8)
                ]
                # murder loop: kill a random worker every ~0.4 s while
                # the fleet drains
                for _ in range(6):
                    await asyncio.sleep(0.4)
                    if service.core.all_terminal():
                        break
                    service.chaos_kill_worker(rng.choice([0, 1]))
                results = await service.join(timeout=180)

                assert len(results) == 8
                for result in results:
                    assert result.state in ("completed", "failed")
                    if result.state == "completed":
                        assert result.sim_now_ns == pytest.approx(8_000_000.0)
                    else:
                        # only budget exhaustion may fail a job here
                        assert result.error["type"] == "WorkerDied"
                        assert result.attempts == 5
                # exactly one result event per job, nothing after it
                result_jobs = [
                    e["job_id"] for e in service.event_log if e["type"] == "result"
                ]
                assert sorted(result_jobs) == sorted(h.job_id for h in handles)
                assert service.core.all_terminal()
                # both slots are alive again at the end (respawned)
                assert all(service.pool.alive(w) for w in service.pool.workers())

        run_async(scenario())

    def test_post_chaos_service_still_serves(self):
        async def scenario():
            async with SimService(workers=2, pool="process") as service:
                first = await service.submit(spec(tenant="a"))
                await wait_started(first)
                service.chaos_kill_worker(0)
                service.chaos_kill_worker(1)
                await first.result(timeout=120)
                # fresh work on respawned workers completes cleanly
                after = [
                    await service.submit(
                        spec(tenant="b", params={"steps": 1000, "step_ns": 10.0})
                    )
                    for _ in range(4)
                ]
                results = [await h.result(timeout=60) for h in after]
                assert all(r.ok and r.attempts == 1 for r in results)

        run_async(scenario())
