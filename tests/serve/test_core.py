"""ServeCore lifecycle state machine, driven by hand on a fake clock.

No pool, no asyncio, no real time: the tests play the role of the
service shell — dispatching, reporting outcomes, ticking timeouts — and
assert on the returned events, directives, and metrics.
"""

from __future__ import annotations

import pytest

from repro.serve import JobSpec, JobState


def spec(tenant="t", **kw):
    kw.setdefault("workload", "spin")
    return JobSpec(tenant=tenant, **kw)


def complete(core, job_id, sim_now_ns=1000.0, events=10.0):
    return core.attempt_finished(
        job_id,
        {"sim_now_ns": sim_now_ns, "events": events, "elapsed_ns": sim_now_ns,
         "core_cycles": 1.0, "degraded_devices": [], "metrics": {"a": 1.0}},
    )


class TestHappyPath:
    def test_submit_dispatch_complete(self, core, clock):
        job, events = core.submit(spec())
        assert job.state is JobState.PENDING
        assert [e["type"] for e in events] == ["queued"]
        assert events[0]["queue_depth"] == 1.0

        clock.advance(0.5)
        job2, events = core.next_assignment(worker=0)
        assert job2 is job
        assert job.state is JobState.RUNNING
        assert [e["type"] for e in events] == ["started"]
        assert core.worker_jobs == {0: job.job_id}

        clock.advance(0.25)
        events = complete(core, job.job_id, sim_now_ns=4000.0)
        assert [e["type"] for e in events] == ["result"]
        assert job.state is JobState.COMPLETED
        result = job.result
        assert result.ok and result.attempts == 1
        assert result.sim_now_ns == 4000.0
        assert result.queue_wait_s == pytest.approx(0.5)
        assert result.run_s == pytest.approx(0.25)
        assert core.worker_jobs == {}
        assert core.all_terminal()

    def test_job_ids_are_tenant_scoped_and_unique(self, core):
        a, _ = core.submit(spec(tenant="a"))
        b, _ = core.submit(spec(tenant="b"))
        a2, _ = core.submit(spec(tenant="a"))
        assert len({a.job_id, b.job_id, a2.job_id}) == 3
        assert a.job_id.startswith("a/") and b.job_id.startswith("b/")

    def test_idle_pop_returns_none(self, core):
        assert core.next_assignment(worker=0) is None

    def test_busy_worker_cannot_double_dispatch(self, core):
        core.submit(spec())
        core.submit(spec())
        core.next_assignment(worker=0)
        with pytest.raises(RuntimeError):
            core.next_assignment(worker=0)


class TestFailureAndRetry:
    def test_simulation_error_fails_immediately(self, core):
        job, _ = core.submit(spec(max_attempts=3))
        core.next_assignment(worker=0)
        events = core.attempt_failed(
            job.job_id, {"type": "DeadlockError", "message": "stuck"}, infra=False
        )
        assert [e["type"] for e in events] == ["result"]
        assert job.state is JobState.FAILED
        assert job.result.error == {"type": "DeadlockError", "message": "stuck"}
        assert job.result.attempts == 1

    def test_infra_failure_retries_within_budget(self, core):
        job, _ = core.submit(spec(max_attempts=3))
        core.next_assignment(worker=0)
        events = core.worker_died(0)
        assert [e["type"] for e in events] == ["retrying"]
        assert job.state is JobState.PENDING
        assert core.worker_jobs == {}
        # budget: attempts 2 and 3 also die -> failed
        core.next_assignment(worker=1)
        assert [e["type"] for e in core.worker_died(1)] == ["retrying"]
        core.next_assignment(worker=1)
        events = core.worker_died(1)
        assert [e["type"] for e in events] == ["result"]
        assert job.state is JobState.FAILED
        assert job.result.error["type"] == "WorkerDied"
        assert job.result.attempts == 3

    def test_worker_death_without_job_is_noop(self, core):
        assert core.worker_died(5) == []

    def test_degraded_devices_survive_failure(self, core):
        job, _ = core.submit(spec())
        core.next_assignment(worker=0)
        core.attempt_failed(
            job.job_id,
            {"type": "DeviceQuarantined", "message": "dev 1",
             "degraded_devices": [1]},
            infra=False,
        )
        assert job.result.degraded_devices == (1,)


class TestCancel:
    def test_cancel_pending_is_immediate(self, core):
        job, _ = core.submit(spec())
        events, directives = core.request_cancel(job.job_id)
        assert [e["type"] for e in events] == ["result"]
        assert directives == []
        assert job.state is JobState.CANCELLED
        assert core.next_assignment(worker=0) is None

    def test_cancel_running_kills_then_terminalizes(self, core):
        job, _ = core.submit(spec())
        core.next_assignment(worker=0)
        events, directives = core.request_cancel(job.job_id)
        assert events == []
        assert directives == [("kill", 0)]
        # the kill lands as a worker death; cancel wins over retry
        events = core.worker_died(0)
        assert [e["type"] for e in events] == ["result"]
        assert job.state is JobState.CANCELLED
        assert job.result.state == "cancelled"

    def test_cancel_races_completion_gracefully(self, core):
        job, _ = core.submit(spec())
        core.next_assignment(worker=0)
        _, directives = core.request_cancel(job.job_id)
        assert directives == [("kill", 0)]
        # the result beat the kill: work is done, honor it
        complete(core, job.job_id)
        assert job.state is JobState.COMPLETED

    def test_cancel_terminal_is_noop(self, core):
        job, _ = core.submit(spec())
        core.request_cancel(job.job_id)
        events, directives = core.request_cancel(job.job_id)
        assert events == [] and directives == []

    def test_cancel_unknown_raises(self, core):
        with pytest.raises(KeyError):
            core.request_cancel("nope/1")

    def test_double_cancel_running_sends_one_kill(self, core):
        job, _ = core.submit(spec())
        core.next_assignment(worker=0)
        _, d1 = core.request_cancel(job.job_id)
        _, d2 = core.request_cancel(job.job_id)
        assert d1 == [("kill", 0)] and d2 == []


class TestTimeouts:
    def test_expiry_emits_kill_once(self, core, clock):
        job, _ = core.submit(spec(timeout_s=1.0))
        core.next_assignment(worker=0)
        assert core.expire_timeouts() == []
        clock.advance(1.5)
        assert core.expire_timeouts() == [("kill", 0)]
        assert core.expire_timeouts() == []  # already marked

    def test_timeout_attributed_not_worker_death(self, core, clock):
        job, _ = core.submit(spec(timeout_s=1.0, max_attempts=1))
        core.next_assignment(worker=0)
        clock.advance(2.0)
        core.expire_timeouts()
        events = core.worker_died(0)
        assert job.state is JobState.FAILED
        assert job.result.error["type"] == "JobTimeout"

    def test_timeout_retries_with_budget(self, core, clock):
        job, _ = core.submit(spec(timeout_s=1.0, max_attempts=2))
        core.next_assignment(worker=0)
        clock.advance(2.0)
        core.expire_timeouts()
        events = core.worker_died(0)
        assert [e["type"] for e in events] == ["retrying"]
        assert job.state is JobState.PENDING
        # fresh attempt gets a fresh budget
        core.next_assignment(worker=0)
        assert not job.timed_out
        assert core.expire_timeouts() == []

    def test_no_timeout_when_unset(self, core, clock):
        core.submit(spec())
        core.next_assignment(worker=0)
        clock.advance(1e6)
        assert core.expire_timeouts() == []


class TestInvariants:
    def test_exactly_one_terminal_transition(self, core):
        job, _ = core.submit(spec())
        core.next_assignment(worker=0)
        complete(core, job.job_id)
        with pytest.raises(RuntimeError):
            core._finalize(job, JobState.FAILED, job.result, core.clock())

    def test_outcome_without_running_state_raises(self, core):
        job, _ = core.submit(spec())
        with pytest.raises(RuntimeError):
            complete(core, job.job_id)

    def test_event_seq_strictly_increases(self, core):
        seqs = []
        for _ in range(3):
            job, events = core.submit(spec())
            seqs += [e["seq"] for e in events]
            _, events = core.next_assignment(worker=0)
            seqs += [e["seq"] for e in events]
            seqs += [e["seq"] for e in complete(core, job.job_id)]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


class TestObservability:
    def test_counters_and_gauges(self, core):
        jobs = [core.submit(spec())[0] for _ in range(3)]
        core.next_assignment(worker=0)
        snap = core.snapshot()
        assert snap["serve.jobs{state=accepted}"] == 3.0
        assert snap["serve.queue_depth{tenant=t}"] == 2.0
        assert snap["serve.running"] == 1.0
        complete(core, jobs[0].job_id)
        core.request_cancel(jobs[1].job_id)
        core.next_assignment(worker=0)
        core.attempt_failed(jobs[2].job_id, {"type": "X", "message": ""}, infra=False)
        snap = core.snapshot()
        assert snap["serve.jobs{state=completed}"] == 1.0
        assert snap["serve.jobs{state=cancelled}"] == 1.0
        assert snap["serve.jobs{state=failed}"] == 1.0
        assert snap["serve.running"] == 0.0
        assert snap["serve.queued"] == 0.0

    def test_latency_summary_per_tenant(self, core, clock):
        for tenant, wait in (("a", 0.1), ("b", 0.4)):
            job, _ = core.submit(spec(tenant=tenant))
            clock.advance(wait)
            core.next_assignment(worker=0)
            clock.advance(0.2)
            complete(core, job.job_id)
        summary = core.latency_summary()
        assert set(summary) == {"a", "b"}
        assert summary["a"]["count"] == 1.0
        assert summary["a"]["p50"] == pytest.approx(300.0)  # ms
        assert summary["b"]["p99"] == pytest.approx(600.0)

    def test_queue_wait_accumulates_across_retries(self, core, clock):
        job, _ = core.submit(spec(max_attempts=2))
        clock.advance(1.0)
        core.next_assignment(worker=0)
        core.worker_died(0)  # requeued
        clock.advance(2.0)
        core.next_assignment(worker=0)
        complete(core, job.job_id)
        assert job.result.queue_wait_s == pytest.approx(3.0)
