"""Environment-matrix regression: service path vs direct ``run()``.

For every ``REPRO_KERNEL`` × ``REPRO_FUSE`` combination the repo
supports, a job whose spec leaves ``kernel``/``fuse`` unset must defer
to the environment exactly like a hand-built system — and produce the
bit-identical ``sim_now_ns`` through the whole service stack
(scheduler, pool, retries-not-taken and all) as a direct
``VSCCSystem.run()`` in the same environment.

This is the guardrail for the service's determinism contract *and* for
the env-deferral plumbing (``VSCCSystem(fuse_delays=None)`` /
``kernel=None``): a regression in either shows up as a fingerprint
mismatch on some matrix cell.
"""

from __future__ import annotations

import pytest

from repro.serve import JobSpec, SimService
from repro.serve.job import _WORKLOADS
from repro.sim.engine import FUSE_ENV_VAR
from repro.sim.kernel import KERNEL_ENV_VAR
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem

from .conftest import run_async

MATRIX = [
    (kernel, fuse)
    for kernel in ("serial", "sharded:2")
    for fuse in ("0", "1")
]

WORKLOAD = "pingpong"
PARAMS = {"sizes": (256, 4096), "iterations": 1}
NUM_DEVICES = 2
SCHEME = "vdma"
SEED = 42


def direct_fingerprint():
    """The reference: a hand-built system run outside the service."""
    system = VSCCSystem(
        num_devices=NUM_DEVICES, scheme=CommScheme(SCHEME), seed=SEED
    )
    _WORKLOADS[WORKLOAD](system, dict(PARAMS))
    return system.sim.now, system.sim.events_processed


def service_fingerprint():
    async def scenario():
        async with SimService(workers=2, pool="inline") as service:
            handle = await service.submit(
                JobSpec(
                    workload=WORKLOAD,
                    params=PARAMS,
                    tenant="matrix",
                    num_devices=NUM_DEVICES,
                    scheme=SCHEME,
                    seed=SEED,
                )
            )
            result = await handle.result(timeout=60)
            assert result.ok, result.error
            return result.sim_now_ns, result.events

    return run_async(scenario())


@pytest.mark.parametrize("kernel,fuse", MATRIX)
def test_service_matches_direct_run(monkeypatch, kernel, fuse):
    monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
    monkeypatch.setenv(FUSE_ENV_VAR, fuse)
    direct_now, direct_events = direct_fingerprint()
    served_now, served_events = service_fingerprint()
    assert served_now == direct_now
    assert served_events == direct_events


def test_matrix_cells_agree_on_simulated_time(monkeypatch):
    """All four cells produce one identical simulated end time.

    (Event counts legitimately differ across backends/fusion; the
    simulated clock must not.)
    """
    times = set()
    for kernel, fuse in MATRIX:
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
        monkeypatch.setenv(FUSE_ENV_VAR, fuse)
        now, _ = service_fingerprint()
        times.add(now)
    assert len(times) == 1


def test_spec_overrides_beat_environment(monkeypatch):
    """A spec pinning kernel/fuse wins over a conflicting environment."""
    monkeypatch.setenv(KERNEL_ENV_VAR, "serial")
    monkeypatch.setenv(FUSE_ENV_VAR, "1")

    async def scenario():
        async with SimService(workers=1, pool="inline") as service:
            pinned = await service.submit(
                JobSpec(
                    workload=WORKLOAD,
                    params=PARAMS,
                    tenant="pin",
                    num_devices=NUM_DEVICES,
                    scheme=SCHEME,
                    seed=SEED,
                    kernel="sharded:2",
                    fuse=False,
                )
            )
            result = await pinned.result(timeout=60)
            assert result.ok
            return result.sim_now_ns

    pinned_now = run_async(scenario())
    # same simulated time as any serial/fused run — overrides change
    # the backend, never the physics
    direct_now, _ = direct_fingerprint()
    assert pinned_now == direct_now
