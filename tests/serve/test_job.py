"""Job model: spec validation, serialization, and the execution path."""

from __future__ import annotations

import threading

import pytest

from repro.faults import DeviceFaults, FaultPlan, LinkFaults
from repro.serve import JobAborted, JobError, JobSpec, execute_job, workload_names


class TestJobSpec:
    def test_defaults_validate(self):
        JobSpec().validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("workload", "no-such-workload"),
            ("tenant", ""),
            ("num_devices", 0),
            ("max_attempts", 0),
            ("timeout_s", 0.0),
            ("timeout_s", -1.0),
            ("progress_every_events", 0),
            ("scheme", "no-such-scheme"),
        ],
    )
    def test_bad_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            JobSpec(**{field: value}).validate()

    def test_builtin_workloads_registered(self):
        names = workload_names()
        for expected in ("allreduce", "bt", "deadlock", "pingpong", "spin"):
            assert expected in names

    def test_scheme_resolves_by_value_and_name(self):
        from repro.vscc.schemes import CommScheme

        assert JobSpec(scheme="vdma").resolved_scheme() is not None
        by_name = JobSpec(scheme=CommScheme("vdma").name).resolved_scheme()
        assert by_name == JobSpec(scheme="vdma").resolved_scheme()
        assert JobSpec().resolved_scheme() is None

    def test_dict_round_trip(self):
        spec = JobSpec(
            workload="pingpong",
            params={"sizes": (256,), "iterations": 2},
            tenant="alice",
            priority=3,
            num_devices=2,
            scheme="vdma",
            kernel="sharded:2",
            fuse=False,
            seed=7,
            timeout_s=1.5,
            max_attempts=3,
            progress_every_events=100,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_with_fault_plan(self):
        plan = FaultPlan(
            seed=11,
            link_defaults=LinkFaults(drop=0.01),
            links={"pcie:0": LinkFaults(corrupt=0.1)},
            devices={1: DeviceFaults(dead_at_ns=5000.0)},
            max_retries=7,
        )
        spec = JobSpec(workload="spin", fault_plan=plan, seed=3)
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored.fault_plan == plan
        assert restored == spec


class TestExecuteJob:
    def test_returns_fingerprint_and_metrics(self):
        events = []
        out = execute_job(
            JobSpec(workload="spin", params={"steps": 16, "step_ns": 250.0}),
            emit=events.append,
        )
        assert out["sim_now_ns"] == pytest.approx(4000.0)
        assert out["events"] >= 16
        assert out["metrics"]
        assert events[-1]["type"] == "metrics"

    def test_deterministic_across_calls(self):
        spec = JobSpec(
            workload="pingpong",
            params={"sizes": (256, 4096)},
            num_devices=2,
            scheme="vdma",
            seed=5,
        )
        a, b = execute_job(spec), execute_job(spec)
        assert a["sim_now_ns"] == b["sim_now_ns"]
        assert a["events"] == b["events"]

    def test_chunked_progress_does_not_perturb_simulation(self):
        base = dict(workload="pingpong", params={"sizes": (256, 1024)}, num_devices=2)
        chunked_events = []
        chunked = execute_job(
            JobSpec(progress_every_events=25, **base), emit=chunked_events.append
        )
        plain = execute_job(JobSpec(progress_every_events=None, **base))
        assert chunked["sim_now_ns"] == plain["sim_now_ns"]
        assert chunked["events"] == plain["events"]
        progress = [e for e in chunked_events if e["type"] == "progress"]
        assert progress, "a 25-event chunk must emit progress on this workload"
        ticks = [e["events"] for e in progress]
        assert ticks == sorted(ticks)

    def test_simulation_error_carries_original_type(self):
        with pytest.raises(JobError) as excinfo:
            execute_job(JobSpec(workload="deadlock"))
        assert excinfo.value.error_type == "DeadlockError"
        assert "rank" in excinfo.value.message

    def test_workload_value_errors_become_job_errors(self):
        with pytest.raises(JobError) as excinfo:
            execute_job(JobSpec(workload="pingpong", params={"ranks": (1, 1)}))
        assert excinfo.value.error_type == "ValueError"

    def test_abort_between_chunks(self):
        abort = threading.Event()
        abort.set()
        with pytest.raises(JobAborted):
            execute_job(
                JobSpec(
                    workload="spin",
                    params={"steps": 10_000, "step_ns": 10.0},
                    progress_every_events=50,
                ),
                abort=abort,
            )

    def test_fault_plan_runs_through_service_path(self):
        spec = JobSpec(
            workload="pingpong",
            params={"sizes": (256,), "iterations": 2},
            num_devices=2,
            scheme="remote-put-wcb",
            fault_plan=FaultPlan.lossy(0.05, seed=3),
            seed=3,
        )
        out = execute_job(spec)
        assert out["sim_now_ns"] > 0
        # lossy-but-recoverable: the resilience layer absorbed the faults
        assert out["degraded_devices"] == []
