"""Property-based tests (hypothesis) on the service core and scheduler.

Universally quantified claims, under arbitrary interleavings of submit /
dispatch / complete / fail / kill / cancel / clock-advance:

1. **liveness, no lost jobs** — after the system drains, every job
   submitted has reached exactly one terminal state, exactly one
   ``result`` event was streamed per job, and nothing stays queued or
   running (the no-deadlock / no-starvation claim);
2. **budget algebra** — attempts never exceed ``max_attempts``; a job
   fails with ``WorkerDied``/``JobTimeout`` only at its last attempt;
3. **priority order within a tenant** — every dispatch picks the
   highest-priority (FIFO among equals) queued job of the tenant it
   serves;
4. **fair-share envelope** — across equally-weighted tenants that stay
   backlogged, dispatch counts in any window stay within a ±2 band of
   the even split.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import FairShareScheduler, JobSpec, JobState, ServeCore

from .conftest import FakeClock

WORKERS = (0, 1, 2)

action = st.one_of(
    st.tuples(
        st.just("submit"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 3),       # priority
        st.integers(1, 3),       # max_attempts
        st.booleans(),           # with timeout
    ),
    st.tuples(st.just("dispatch"), st.sampled_from(WORKERS)),
    st.tuples(st.just("complete"), st.sampled_from(WORKERS)),
    st.tuples(st.just("fail_sim"), st.sampled_from(WORKERS)),
    st.tuples(st.just("worker_die"), st.sampled_from(WORKERS)),
    st.tuples(st.just("cancel"), st.integers(0, 60)),
    st.tuples(st.just("advance"), st.floats(0.01, 2.0)),
)


class Model:
    """Interpreter: applies actions to a ServeCore, checking invariants."""

    def __init__(self):
        self.clock = FakeClock()
        self.core = ServeCore(clock=self.clock)
        self.events: list[dict] = []
        self.queued: dict[str, list] = {}  # tenant -> JobRecords, model mirror
        self.last_seq = 0

    def record(self, events):
        for event in events:
            assert event["seq"] > self.last_seq, "event seq must increase"
            self.last_seq = event["seq"]
        self.events.extend(events)

    # -- actions ---------------------------------------------------------------

    def submit(self, tenant, priority, max_attempts, with_timeout):
        spec = JobSpec(
            workload="spin",
            tenant=tenant,
            priority=priority,
            max_attempts=max_attempts,
            timeout_s=1.0 if with_timeout else None,
        )
        job, events = self.core.submit(spec)
        self.record(events)
        self.queued.setdefault(tenant, []).append(job)

    def dispatch(self, worker):
        if worker in self.core.worker_jobs:
            return
        out = self.core.next_assignment(worker)
        if out is None:
            assert len(self.core.scheduler) == 0
            return
        job, events = out
        self.record(events)
        mirror = self.queued[job.spec.tenant]
        # property 3: highest priority, FIFO among equals, of its tenant
        best = max(mirror, key=lambda j: (j.spec.priority, -j.seq))
        assert job.spec.priority == best.spec.priority
        assert job.seq == min(
            j.seq for j in mirror if j.spec.priority == job.spec.priority
        )
        mirror.remove(job)

    def _outcome(self, worker, fn):
        job_id = self.core.worker_jobs.get(worker)
        if job_id is None:
            return
        job = self.core.jobs[job_id]
        self.record(fn(job))
        # property 2: budget algebra
        assert job.attempts <= job.spec.max_attempts
        if job.state is JobState.PENDING:  # retried
            self.queued[job.spec.tenant].append(job)
        elif job.state is JobState.FAILED and job.result.error["type"] in (
            "WorkerDied", "JobTimeout"
        ):
            assert job.attempts == job.spec.max_attempts

    def complete(self, worker):
        self._outcome(
            worker,
            lambda job: self.core.attempt_finished(
                job.job_id,
                {"sim_now_ns": 1.0, "events": 1.0, "elapsed_ns": 1.0,
                 "core_cycles": 1.0, "degraded_devices": [], "metrics": {}},
            ),
        )

    def fail_sim(self, worker):
        self._outcome(
            worker,
            lambda job: self.core.attempt_failed(
                job.job_id, {"type": "DeadlockError", "message": "x"},
                infra=False,
            ),
        )

    def worker_die(self, worker):
        self._outcome(worker, lambda job: self.core.worker_died(worker))

    def cancel(self, index):
        jobs = sorted(self.core.jobs)
        if not jobs:
            return
        job = self.core.jobs[jobs[index % len(jobs)]]
        was_pending = job.state is JobState.PENDING
        events, directives = self.core.request_cancel(job.job_id)
        self.record(events)
        if was_pending:
            self.queued[job.spec.tenant].remove(job)
        for _, worker in directives:
            # a kill directive always lands as a worker death eventually
            self.worker_die(worker)

    def advance(self, dt):
        self.clock.advance(dt)
        for _, worker in self.core.expire_timeouts():
            self.worker_die(worker)

    # -- drain + final invariants ---------------------------------------------

    def drain(self):
        for _ in range(10_000):
            if self.core.all_terminal():
                break
            for worker in WORKERS:
                self.dispatch(worker)
            for worker in list(self.core.worker_jobs):
                self.complete(worker)
        assert self.core.all_terminal(), (
            f"stuck jobs: {self.core.unfinished()}"
        )

    def check_final(self):
        # property 1: exactly one result event per job, nothing lost
        results = [e["job_id"] for e in self.events if e["type"] == "result"]
        assert sorted(results) == sorted(self.core.jobs)
        terminal_after = set()
        for event in self.events:
            assert event["job_id"] not in terminal_after, "event after result"
            if event["type"] == "result":
                terminal_after.add(event["job_id"])
        snap = self.core.snapshot()
        accepted = snap.get("serve.jobs{state=accepted}", 0.0)
        finished = sum(
            snap.get(f"serve.jobs{{state={s}}}", 0.0)
            for s in ("completed", "failed", "cancelled")
        )
        assert accepted == finished == len(self.core.jobs)


@settings(max_examples=60, deadline=None)
@given(st.lists(action, max_size=60))
def test_core_invariants_under_random_interleavings(actions):
    model = Model()
    for act in actions:
        getattr(model, act[0])(*act[1:])
    model.drain()
    model.check_final()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
             min_size=6, max_size=60)
)
def test_fair_share_envelope(jobs):
    """Property 4 on the bare scheduler, equal weights."""

    class Rec:
        seq = 0

        def __init__(self, tenant, priority):
            Rec.seq += 1
            self.seq = Rec.seq
            self.job_id = f"{tenant}/{self.seq}"
            self.spec = type("S", (), {"tenant": tenant, "priority": priority})()

    sched = FairShareScheduler()
    for tenant, priority in jobs:
        sched.push(Rec(tenant, priority))
    tenants = {t for t, _ in jobs}
    totals = {t: sum(1 for tt, _ in jobs if tt == t) for t in tenants}
    served = {t: 0 for t in tenants}
    order = []
    while True:
        rec = sched.pop()
        if rec is None:
            break
        order.append(rec.spec.tenant)
        served[rec.spec.tenant] += 1
        # while every tenant is still backlogged, no tenant may be more
        # than 2 dispatches ahead of another
        backlogged = [t for t in tenants if served[t] < totals[t]]
        if len(backlogged) == len(tenants):
            counts = [served[t] for t in tenants]
            assert max(counts) - min(counts) <= 2
    assert len(order) == len(jobs)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 5), min_size=1, max_size=30),
    st.randoms(use_true_random=False),
)
def test_single_tenant_strict_priority(priorities, rng):
    """With one tenant, dispatch order is exactly (priority desc, seq)."""
    clock = FakeClock()
    core = ServeCore(clock=clock)
    jobs = []
    for p in priorities:
        job, _ = core.submit(JobSpec(workload="spin", tenant="only", priority=p))
        jobs.append(job)
    expected = sorted(jobs, key=lambda j: (-j.spec.priority, j.seq))
    got = []
    while True:
        out = core.next_assignment(worker=0)
        if out is None:
            break
        job, _ = out
        got.append(job)
        core.attempt_finished(
            job.job_id,
            {"sim_now_ns": 1.0, "events": 1.0, "elapsed_ns": 1.0,
             "core_cycles": 1.0, "degraded_devices": [], "metrics": {}},
        )
    assert got == expected
