"""Fair-share scheduler: priority order, fairness envelope, tombstones."""

from __future__ import annotations

import pytest

from repro.serve import FairShareScheduler


class Rec:
    """Minimal stand-in for a JobRecord (what the scheduler duck-types)."""

    _seq = 0

    def __init__(self, tenant: str, priority: int = 0):
        Rec._seq += 1
        self.seq = Rec._seq
        self.job_id = f"{tenant}/{self.seq}"

        class Spec:
            pass

        self.spec = Spec()
        self.spec.tenant = tenant
        self.spec.priority = priority

    def __repr__(self):
        return self.job_id


def drain(sched):
    out = []
    while True:
        rec = sched.pop()
        if rec is None:
            return out
        out.append(rec)


class TestWithinTenant:
    def test_fifo_among_equal_priorities(self):
        sched = FairShareScheduler()
        recs = [Rec("a") for _ in range(5)]
        for r in recs:
            sched.push(r)
        assert drain(sched) == recs

    def test_priority_beats_fifo(self):
        sched = FairShareScheduler()
        low = Rec("a", priority=0)
        high = Rec("a", priority=9)
        mid = Rec("a", priority=5)
        for r in (low, high, mid):
            sched.push(r)
        assert drain(sched) == [high, mid, low]

    def test_priority_is_tenant_local(self):
        # b's high priority cannot let it take two slots before a runs.
        sched = FairShareScheduler()
        sched.push(Rec("b", priority=100))
        sched.push(Rec("b", priority=100))
        a = Rec("a", priority=0)
        sched.push(a)
        order = drain(sched)
        assert a in order[:2]


class TestFairShare:
    def test_equal_weight_interleave(self):
        sched = FairShareScheduler()
        for _ in range(10):
            sched.push(Rec("a"))
            sched.push(Rec("b"))
        tenants = [r.spec.tenant for r in drain(sched)]
        # any prefix is within +-1 of an even split
        for k in range(1, len(tenants) + 1):
            counts = tenants[:k].count("a"), tenants[:k].count("b")
            assert abs(counts[0] - counts[1]) <= 1

    def test_weighted_share(self):
        sched = FairShareScheduler(weights={"big": 3.0, "small": 1.0})
        for _ in range(30):
            sched.push(Rec("big"))
            sched.push(Rec("small"))
        first20 = [r.spec.tenant for r in [sched.pop() for _ in range(20)]]
        big = first20.count("big")
        # 3:1 weights over 20 dispatches: big gets ~15
        assert 13 <= big <= 17

    def test_flood_cannot_starve(self):
        sched = FairShareScheduler()
        for _ in range(100):
            sched.push(Rec("flood"))
        latecomer = Rec("quiet")
        sched.push(latecomer)
        first3 = [sched.pop() for _ in range(3)]
        assert latecomer in first3

    def test_idle_tenant_banks_no_credit(self):
        sched = FairShareScheduler()
        # a runs 10 jobs while b is idle
        for _ in range(10):
            sched.push(Rec("a"))
        drain(sched)
        # now both backlogged: b must not get 10 dispatches in a row
        for _ in range(10):
            sched.push(Rec("a"))
            sched.push(Rec("b"))
        first6 = [r.spec.tenant for r in [sched.pop() for _ in range(6)]]
        assert first6.count("b") <= 4

    def test_depths_and_len(self):
        sched = FairShareScheduler()
        assert len(sched) == 0
        sched.push(Rec("a"))
        sched.push(Rec("a"))
        sched.push(Rec("b"))
        assert len(sched) == 3
        assert sched.depth("a") == 2
        assert sched.depths() == {"a": 2, "b": 1}
        assert sorted(sched.backlogged()) == ["a", "b"]

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler(weights={"a": 0.0})
        with pytest.raises(ValueError):
            FairShareScheduler(default_weight=-1.0)
        sched = FairShareScheduler()
        with pytest.raises(ValueError):
            sched.set_weight("a", 0.0)


class TestRemove:
    def test_remove_skips_at_pop(self):
        sched = FairShareScheduler()
        a, b, c = Rec("t"), Rec("t"), Rec("t")
        for r in (a, b, c):
            sched.push(r)
        assert sched.remove(b)
        assert len(sched) == 2
        assert drain(sched) == [a, c]

    def test_remove_unqueued_is_false(self):
        sched = FairShareScheduler()
        a = Rec("t")
        assert not sched.remove(a)
        sched.push(a)
        assert sched.pop() is a
        assert not sched.remove(a)

    def test_double_remove_is_false(self):
        sched = FairShareScheduler()
        a, b = Rec("t"), Rec("t")
        sched.push(a)
        sched.push(b)
        assert sched.remove(a)
        assert not sched.remove(a)
        assert drain(sched) == [b]

    def test_remove_all_then_pop_none(self):
        sched = FairShareScheduler()
        recs = [Rec("t") for _ in range(4)]
        for r in recs:
            sched.push(r)
        for r in recs:
            assert sched.remove(r)
        assert sched.pop() is None
        assert len(sched) == 0
