"""Asyncio service end-to-end on the inline (thread) pool.

Covers the full submit → stream → result path, cancellation of queued
and running jobs, error propagation, the client layer, and service
metrics — everything except real process death, which lives in
``test_chaos.py``.
"""

from __future__ import annotations

import pytest

from repro.serve import JobSpec, ServeClient, SimService

from .conftest import run_async

SMALL_SPIN = {"steps": 16, "step_ns": 250.0}
LONG_SPIN = {"steps": 10_000_000, "step_ns": 10.0}


def spin_spec(tenant="t", params=SMALL_SPIN, **kw):
    kw.setdefault("progress_every_events", 1000)
    return JobSpec(workload="spin", tenant=tenant, params=dict(params), **kw)


class TestEndToEnd:
    def test_submit_and_result(self):
        async def scenario():
            async with SimService(workers=2, pool="inline") as service:
                handle = await service.submit(spin_spec())
                result = await handle.result(timeout=30)
                assert result.ok
                assert result.sim_now_ns == pytest.approx(4000.0)
                assert result.attempts == 1
                assert result.metrics
                return service.event_log

        log = run_async(scenario())
        assert [e["type"] for e in log] == ["queued", "started", "metrics", "result"]

    def test_event_stream_ends_at_result(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                handle = await service.submit(spin_spec())
                seen = [e async for e in handle.events()]
                assert seen[0]["type"] == "queued"
                assert seen[-1]["type"] == "result"
                assert all(e["job_id"] == handle.job_id for e in seen)
                assert seen[-1]["job_result"]["state"] == "completed"

        run_async(scenario())

    def test_simulation_error_propagates(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                handle = await service.submit(
                    JobSpec(workload="deadlock", tenant="t", max_attempts=3)
                )
                result = await handle.result(timeout=30)
                assert result.state == "failed"
                assert result.error["type"] == "DeadlockError"
                # deterministic failure: never retried
                assert result.attempts == 1

        run_async(scenario())

    def test_many_jobs_many_tenants_all_terminal(self):
        async def scenario():
            async with SimService(workers=2, pool="inline") as service:
                handles = []
                for i in range(12):
                    handles.append(
                        await service.submit(
                            spin_spec(tenant=f"tenant{i % 3}", priority=i % 2)
                        )
                    )
                results = await service.join(timeout=60)
                assert len(results) == 12
                assert all(r.ok for r in results)
                snap = service.metrics_snapshot()
                assert snap["serve.jobs{state=completed}"] == 12.0
                assert service.core.all_terminal()

        run_async(scenario())

    def test_submit_before_start_rejected(self):
        async def scenario():
            service = SimService(workers=1, pool="inline")
            with pytest.raises(RuntimeError):
                await service.submit(spin_spec())

        run_async(scenario())

    def test_deterministic_fingerprint_through_service(self):
        async def scenario():
            outcomes = []
            for _ in range(2):
                async with SimService(workers=2, pool="inline") as service:
                    handles = [
                        await service.submit(
                            JobSpec(
                                workload="pingpong",
                                tenant=f"t{i}",
                                params={"sizes": (256, 1024)},
                                num_devices=2,
                                scheme="vdma",
                                seed=i,
                            )
                        )
                        for i in range(3)
                    ]
                    results = await ServeClient.gather(handles, timeout=60)
                    outcomes.append(
                        [(r.state, r.sim_now_ns, r.events) for r in results]
                    )
            assert outcomes[0] == outcomes[1]

        run_async(scenario())


class TestCancellation:
    def test_cancel_queued_job(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                blocker = await service.submit(spin_spec(params=LONG_SPIN))
                queued = await service.submit(spin_spec())
                await queued.cancel()
                result = await queued.result(timeout=30)
                assert result.state == "cancelled"
                await blocker.cancel()
                assert (await blocker.result(timeout=30)).state == "cancelled"

        run_async(scenario())

    def test_cancel_running_job(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                handle = await service.submit(spin_spec(params=LONG_SPIN))
                # wait until it actually starts
                async for event in handle.events():
                    if event["type"] == "started":
                        break
                await handle.cancel()
                result = await handle.result(timeout=30)
                assert result.state == "cancelled"
                # the worker slot is usable again afterwards
                after = await service.submit(spin_spec())
                assert (await after.result(timeout=30)).ok

        run_async(scenario())

    def test_shutdown_cancels_unfinished(self):
        async def scenario():
            service = SimService(workers=1, pool="inline")
            await service.start()
            running = await service.submit(spin_spec(params=LONG_SPIN))
            queued = await service.submit(spin_spec(params=LONG_SPIN))
            await service.shutdown(timeout=30)
            assert service.core.jobs[running.job_id].terminal
            assert service.core.jobs[queued.job_id].state.value == "cancelled"

        run_async(scenario())


class TestTimeout:
    def test_per_job_timeout_enforced(self):
        async def scenario():
            async with SimService(workers=1, pool="inline",
                                  tick_s=0.01) as service:
                handle = await service.submit(
                    spin_spec(params=LONG_SPIN, timeout_s=0.2, max_attempts=1)
                )
                result = await handle.result(timeout=30)
                assert result.state == "failed"
                assert result.error["type"] == "JobTimeout"

        run_async(scenario())


class TestClient:
    def test_client_stamps_tenant(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                client = ServeClient(service, tenant="alice")
                result = await client.run(
                    "spin", params=SMALL_SPIN, timeout=30,
                    progress_every_events=1000,
                )
                assert result.ok and result.tenant == "alice"

        run_async(scenario())

    def test_client_rejects_foreign_tenant(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                client = ServeClient(service, tenant="alice")
                with pytest.raises(ValueError):
                    await client.submit("spin", tenant="bob")
                with pytest.raises(ValueError):
                    await client.submit_many([spin_spec(tenant="bob")])

        run_async(scenario())

    def test_submit_many_and_gather(self):
        async def scenario():
            async with SimService(workers=2, pool="inline") as service:
                client = ServeClient(service, tenant="c")
                handles = await client.submit_many(
                    [spin_spec(tenant="c") for _ in range(5)]
                )
                results = await client.gather(handles, timeout=60)
                assert [r.ok for r in results] == [True] * 5

        run_async(scenario())


class TestObservability:
    def test_latency_summary_populated(self):
        async def scenario():
            async with SimService(workers=2, pool="inline") as service:
                for tenant in ("a", "a", "b"):
                    await service.submit(spin_spec(tenant=tenant))
                await service.join(timeout=60)
                summary = service.latency_summary()
                assert summary["a"]["count"] == 2.0
                assert summary["b"]["p99"] >= 0.0

        run_async(scenario())

    def test_queue_depth_gauge_tracks(self):
        async def scenario():
            async with SimService(workers=1, pool="inline") as service:
                await service.submit(spin_spec(params=LONG_SPIN, tenant="q"))
                await service.submit(spin_spec(tenant="q"))
                await service.submit(spin_spec(tenant="q"))
                snap = service.metrics_snapshot()
                assert snap["serve.queue_depth{tenant=q}"] == 2.0
                await service.shutdown(timeout=30)

        run_async(scenario())
