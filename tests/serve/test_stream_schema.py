"""Every streamed service payload validates against the checked-in schema.

Runs a scenario that produces each event type at least once — queued,
started, progress, metrics, retrying, result — across completed,
failed, cancelled and retried jobs, then validates the service's whole
audit log with the stdlib validator (``tools/validate_job_stream.py``),
including its stream-level invariants (monotone ``seq``, exactly one
``result`` per job, nothing after it).
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.serve import JobSpec, SimService

from .conftest import run_async

sys.path.insert(0, "tools")

from validate_job_stream import load_events, validate_stream  # noqa: E402


@pytest.fixture(scope="module")
def event_log():
    async def scenario():
        async with SimService(workers=2, pool="inline", tick_s=0.01) as service:
            ok = await service.submit(
                JobSpec(workload="pingpong", tenant="alice",
                        params={"sizes": (256,)}, num_devices=2, seed=1,
                        progress_every_events=10)
            )
            bad = await service.submit(
                JobSpec(workload="deadlock", tenant="bob")
            )
            # timeout with budget 2: attempt 1 emits ``retrying``
            slow = await service.submit(
                JobSpec(workload="spin", tenant="carol",
                        params={"steps": 10_000_000, "step_ns": 10.0},
                        timeout_s=0.15, max_attempts=2,
                        progress_every_events=10_000)
            )
            doomed = await service.submit(
                JobSpec(workload="spin", tenant="alice",
                        params={"steps": 10_000_000, "step_ns": 10.0})
            )
            await doomed.cancel()
            await service.join(timeout=120)
            return list(service.event_log)

    return run_async(scenario())


def test_all_event_types_exercised(event_log):
    types = {e["type"] for e in event_log}
    assert types == {"queued", "started", "progress", "metrics",
                     "retrying", "result"}
    states = {
        e["job_result"]["state"] for e in event_log if e["type"] == "result"
    }
    assert states == {"completed", "failed", "cancelled"}


def test_every_event_validates(event_log):
    errors = validate_stream(event_log)
    assert errors == []


def test_log_survives_json_round_trip(event_log, tmp_path):
    # as an array ...
    array_path = tmp_path / "events.json"
    array_path.write_text(json.dumps(event_log))
    assert validate_stream(load_events(array_path.read_text())) == []
    # ... and as JSON lines
    jsonl_path = tmp_path / "events.jsonl"
    jsonl_path.write_text("\n".join(json.dumps(e) for e in event_log))
    assert validate_stream(load_events(jsonl_path.read_text())) == []


def test_validator_rejects_bad_payloads(event_log):
    good = dict(event_log[0])

    unknown_key = {**good, "surprise": 1}
    assert validate_stream([unknown_key])

    bad_type = {**good, "type": "exploded"}
    assert validate_stream([bad_type])

    missing_field = {k: v for k, v in good.items() if k != "tenant"}
    assert validate_stream([missing_field])

    # duplicate result / stale seq
    result = next(e for e in event_log if e["type"] == "result")
    assert validate_stream([result, result])


def test_result_payload_round_trips_to_job_result(event_log):
    from repro.results import JobResult

    for event in event_log:
        if event["type"] != "result":
            continue
        restored = JobResult.from_dict(event["job_result"])
        assert restored.to_dict() == event["job_result"]
        assert restored.job_id == event["job_id"]
