"""Unit tests for frequency-domain conversion."""

import pytest

from repro.sim.clock import Clock


def test_cycles_to_ns_and_back():
    core = Clock(533.0)
    assert core.cycles(533) == pytest.approx(1000.0)
    assert core.to_cycles(1000.0) == pytest.approx(533.0)


def test_period():
    assert Clock(800.0).period_ns == pytest.approx(1.25)


def test_roundtrip():
    clk = Clock(123.456)
    assert clk.to_cycles(clk.cycles(777)) == pytest.approx(777)


def test_invalid_frequency():
    with pytest.raises(ValueError):
        Clock(0.0)
    with pytest.raises(ValueError):
        Clock(-5.0)
