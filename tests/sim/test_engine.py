"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Delay, Event, Process, Signal, Simulator
from repro.sim.errors import DeadlockError, InvalidYield, ProcessFailed


def test_delay_advances_time():
    sim = Simulator()

    def prog():
        yield Delay(10.0)
        yield Delay(2.5)
        return sim.now

    proc = sim.spawn(prog())
    sim.run()
    assert proc.result == pytest.approx(12.5)
    assert sim.now == pytest.approx(12.5)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def prog(name, step):
        for i in range(3):
            yield Delay(step)
            order.append((name, sim.now))

    sim.spawn(prog("a", 2.0))
    sim.spawn(prog("b", 3.0))
    sim.run()
    # tie at t=6.0 resolves by scheduling order: b's wake-up at 6.0 was
    # enqueued (at t=3.0) before a's (at t=4.0).
    assert order == [
        ("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0), ("b", 9.0),
    ]


def test_event_wakes_waiter_with_value():
    sim = Simulator()

    def waiter(evt):
        value = yield evt
        return value

    def trigger(evt):
        yield Delay(5.0)
        evt.trigger("payload")

    evt = sim.event()
    w = sim.spawn(waiter(evt))
    sim.spawn(trigger(evt))
    sim.run()
    assert w.result == "payload"
    assert sim.now == 5.0


def test_event_is_sticky():
    sim = Simulator()
    evt = sim.event()
    evt.trigger(42)

    def late():
        value = yield evt
        return value

    proc = sim.spawn(late())
    sim.run()
    assert proc.result == 42


def test_event_double_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    evt.trigger()
    with pytest.raises(Exception):
        evt.trigger()


def test_wait_on_process_returns_its_value():
    sim = Simulator()

    def child():
        yield Delay(3.0)
        return "done"

    def parent(child_proc):
        value = yield child_proc
        return value + "!"

    c = sim.spawn(child())
    p = sim.spawn(parent(c))
    sim.run()
    assert p.result == "done!"


def test_process_failure_propagates_to_waiter():
    sim = Simulator(fail_fast=False)

    def child():
        yield Delay(1.0)
        raise RuntimeError("boom")

    def parent(child_proc):
        yield child_proc

    c = sim.spawn(child())
    p = sim.spawn(parent(c))
    sim.run()
    assert c.failure is not None
    assert p.failure is not None
    assert isinstance(p.failure, ProcessFailed)


def test_fail_fast_raises_from_run():
    sim = Simulator(fail_fast=True)

    def bad():
        yield Delay(1.0)
        raise ValueError("bad")

    sim.spawn(bad())
    with pytest.raises(ProcessFailed):
        sim.run()


def test_invalid_yield_detected():
    sim = Simulator()

    def bad():
        yield "not a command"

    sim.spawn(bad())
    with pytest.raises(InvalidYield):
        sim.run()


def test_deadlock_detection():
    sim = Simulator()

    def stuck(evt):
        yield evt

    sim.spawn(stuck(sim.event()))
    with pytest.raises(DeadlockError):
        sim.run()


def test_daemon_processes_do_not_deadlock():
    sim = Simulator()

    def stuck(evt):
        yield evt

    sim.spawn(stuck(sim.event()), name="daemon:parked")
    sim.run()  # no DeadlockError


def test_run_until_limit():
    sim = Simulator()

    def forever():
        while True:
            yield Delay(1.0)

    sim.spawn(forever())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_signal_is_not_sticky():
    sim = Simulator()
    woken = []

    def waiter(sig):
        yield sig
        woken.append(sim.now)

    sig = sim.signal()
    sig.pulse()  # no waiters: lost
    sim.spawn(waiter(sig))
    sim.call_at(4.0, sig.pulse)
    sim.run()
    assert woken == [4.0]


def test_call_at_runs_callback():
    sim = Simulator()
    seen = []
    sim.call_at(7.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.0]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


# -- cancellable timers (Simulator.after / TimerHandle) ------------------------


def test_after_fires_at_the_deadline():
    sim = Simulator()
    fired = []
    handle = sim.after(25.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [25.0]
    assert handle.fired
    assert not handle.active
    assert not handle.cancelled


def test_after_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.after(25.0, lambda: fired.append(sim.now))
    assert handle.active
    assert handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []
    # Cancelling twice is a no-op.
    assert not handle.cancel()


def test_after_cancel_after_firing_is_refused():
    sim = Simulator()
    handle = sim.after(5.0, lambda: None)
    sim.run()
    assert not handle.cancel()
    assert handle.fired


def test_after_timer_does_not_hold_the_simulation():
    """Timers are daemons: a pending timer alone never deadlocks a run."""
    sim = Simulator()
    fired = []
    sim.after(100.0, lambda: fired.append(True))

    def worker():
        yield 10.0

    sim.spawn(worker())
    sim.run()
    # The run finished; whether the daemon timer fired is incidental —
    # the point is that no DeadlockError was raised on its account.


def test_after_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1.0, lambda: None)


def test_timer_callback_may_cancel_its_own_handle():
    """Self-cancel inside the callback must not double-trigger."""
    sim = Simulator()
    outcome = []

    def fire():
        outcome.append(handle.cancel())  # refused: already fired

    handle = sim.after(3.0, fire)
    sim.run()
    assert outcome == [False]
