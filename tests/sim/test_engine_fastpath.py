"""Unit tests for the kernel hot paths: bare-number yields + zero-delay lane.

These pin the behaviours the hot-path overhaul introduced: a bare
``float``/``int`` yield is exactly ``Delay(value)``, negative bare
numbers are invalid yields, and the zero-delay fast lane preserves the
global (time, seq) dispatch order against heap-scheduled wake-ups.
"""

import pytest

from repro.sim.engine import Delay, Event, Simulator
from repro.sim.errors import DeadlockError, InvalidYield


def test_bare_float_yield_advances_time():
    sim = Simulator()

    def prog():
        yield 10.0
        yield 2.5
        return sim.now

    proc = sim.spawn(prog())
    sim.run()
    assert proc.result == pytest.approx(12.5)


def test_bare_int_yield_advances_time():
    sim = Simulator()

    def prog():
        yield 7
        yield 3
        return sim.now

    proc = sim.spawn(prog())
    sim.run()
    assert proc.result == pytest.approx(10.0)


def test_bare_and_delay_yields_are_equivalent():
    """The same program yields identical event counts and times both ways."""

    def run(make_command):
        sim = Simulator()

        def prog(step):
            for _ in range(5):
                yield make_command(step)

        sim.spawn(prog(2.0))
        sim.spawn(prog(3.0))
        sim.run()
        return sim.now, sim.events_processed

    assert run(lambda ns: ns) == run(Delay)


def test_negative_bare_yield_is_invalid():
    sim = Simulator()

    def prog():
        yield -1.0

    sim.spawn(prog())
    with pytest.raises(InvalidYield):
        sim.run()


def test_zero_delay_yields_preserve_seq_order():
    """A zero-delay storm interleaves in exact spawn order, round-robin."""
    sim = Simulator()
    order = []

    def prog(name):
        for i in range(3):
            order.append((name, i))
            yield 0.0

    sim.spawn(prog("a"))
    sim.spawn(prog("b"))
    sim.run()
    assert order == [
        ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
    ]


def test_fast_lane_merges_with_heap_in_time_order():
    """Zero-delay wake-ups at t dispatch before heap entries at t' > t,
    and after heap entries scheduled earlier for the same time."""
    sim = Simulator()
    order = []

    def delayed():
        yield 5.0
        order.append("delayed@5")

    def chatty():
        yield 5.0
        order.append("chatty@5")
        yield 0.0
        order.append("chatty-zero@5")
        yield 1.0
        order.append("chatty@6")

    sim.spawn(delayed())
    sim.spawn(chatty())
    sim.run()
    assert order == ["delayed@5", "chatty@5", "chatty-zero@5", "chatty@6"]
    assert sim.now == pytest.approx(6.0)


def test_event_trigger_uses_fast_lane_deterministically():
    """Waiters woken by a trigger resume in registration order."""
    sim = Simulator()
    evt = Event(sim, "gate")
    order = []

    def waiter(name):
        yield evt
        order.append(name)

    for name in ("w1", "w2", "w3"):
        sim.spawn(waiter(name), name=name)

    def firer():
        yield 1.0
        evt.trigger("go")

    sim.spawn(firer())
    sim.run()
    assert order == ["w1", "w2", "w3"]


def test_run_until_with_fast_lane_pending():
    """run_until stops at the trigger even with zero-delay work queued."""
    sim = Simulator()
    evt = Event(sim, "done")
    ticks = []

    def spinner():
        for i in range(50):
            ticks.append(i)
            yield 0.0
        yield 100.0

    def firer():
        yield 2.0
        evt.trigger(42)

    sim.spawn(spinner(), name="daemon:spin")
    sim.spawn(firer())
    assert sim.run_until(evt) == 42
    assert sim.now == pytest.approx(2.0)
    assert len(ticks) == 50  # the t=0 fast-lane burst ran before t=2


def test_deadlock_detected_with_empty_fast_lane():
    sim = Simulator()

    def stuck(evt):
        yield evt

    sim.spawn(stuck(sim.event("never")))
    with pytest.raises(DeadlockError):
        sim.run()


def test_run_until_time_limit_still_enforced():
    from repro.sim.errors import SimulationError

    sim = Simulator()
    evt = sim.event("never")

    def ticker():
        while True:
            yield 10.0

    sim.spawn(ticker(), name="daemon:tick")
    with pytest.raises(SimulationError):
        sim.run_until(evt, limit=100.0)
