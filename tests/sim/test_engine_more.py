"""Additional kernel coverage: run_until, wait_all, max_events."""

import pytest

from repro.sim.engine import Delay, Simulator, wait_all
from repro.sim.errors import DeadlockError, SimulationError


def test_run_until_event():
    sim = Simulator()
    evt = sim.event()

    def trigger():
        yield Delay(25.0)
        evt.trigger("v")

    def background():
        for _ in range(100):
            yield Delay(10.0)

    sim.spawn(trigger())
    sim.spawn(background())
    value = sim.run_until(evt)
    assert value == "v"
    assert sim.now == 25.0  # stopped at the trigger, not the background end


def test_run_until_time_limit():
    sim = Simulator()
    evt = sim.event()

    def never():
        while True:
            yield Delay(10.0)

    sim.spawn(never())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until(evt, limit=100.0)


def test_run_until_deadlock_detected():
    sim = Simulator()
    evt = sim.event()
    other = sim.event()

    def stuck():
        yield other

    sim.spawn(stuck())
    with pytest.raises(DeadlockError):
        sim.run_until(evt)


def test_wait_all_helper():
    sim = Simulator()

    def worker(n):
        yield Delay(n * 10.0)
        return n * n

    procs = [sim.spawn(worker(n)) for n in (3, 1, 2)]
    gatherer = sim.spawn(wait_all(procs))
    sim.run()
    assert gatherer.result == [9, 1, 4]


def test_max_events_stops_early():
    sim = Simulator()

    def ticker():
        for _ in range(100):
            yield Delay(1.0)

    sim.spawn(ticker())
    sim.run(max_events=10)
    assert sim.now < 11.0


def test_event_on_trigger_immediate_when_set():
    sim = Simulator()
    evt = sim.event()
    evt.trigger(5)
    seen = []
    evt.on_trigger(lambda v: seen.append(v))
    assert seen == [5]


def test_signal_once_fires_single_pulse():
    sim = Simulator()
    sig = sim.signal()
    count = []
    sig.once(lambda: count.append(1))
    sig.pulse()
    sig.pulse()
    assert count == [1]
