"""Delay-fusion semantics: fused chains must be invisible except in speed.

Every test here runs the same program under ``fuse_delays=True`` and
``fuse_delays=False`` and demands bitwise-identical simulated time —
the soundness contract of DESIGN.md §12. Event counts are the one
sanctioned difference (fusing collapses wake-ups).
"""

from __future__ import annotations

import struct

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import InvalidYield, SimulationError


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


# -- pure-delay chains ---------------------------------------------------------


def test_fused_chain_matches_sequential_yields_bitwise():
    delays = (0.1, 0.2, 0.30000000000000004, 1e-9, 7.25)

    def chain():
        yield delays

    def sequential():
        for d in delays:
            yield d

    fused = Simulator(fuse_delays=True)
    fused.spawn(chain())
    fused.run()
    unfused = Simulator(fuse_delays=False)
    unfused.spawn(chain())
    unfused.run()
    plain = Simulator()
    plain.spawn(sequential())
    plain.run()
    assert _bits(fused.now) == _bits(unfused.now) == _bits(plain.now)
    # One wake-up for the whole chain vs one per element.
    assert unfused.events_processed - fused.events_processed == len(delays) - 1
    assert fused.kernel.fused_yields == len(delays) - 1
    assert unfused.kernel.fused_yields == 0


def test_fused_chain_rejects_negative_element():
    def prog():
        yield (1.0, -0.5, 2.0)

    sim = Simulator(fuse_delays=True)
    sim.spawn(prog())
    with pytest.raises((InvalidYield, SimulationError)):
        sim.run()


def test_empty_and_singleton_chains():
    log = []

    def prog():
        yield (3.0,)
        log.append(("one", None))
        yield 1.0
        log.append(("done", None))

    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse)
        sim.spawn(prog())
        sim.run()
        assert sim.now == 4.0
        log.clear()


# -- waitable-headed chains ----------------------------------------------------


def test_event_headed_chain_wakes_at_trigger_plus_tail():
    """yield (event, d) resumes at trigger_time + d, bitwise, both modes."""
    results = {}
    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse)
        ev = sim.event()

        def waiter():
            yield (ev, 0.75, 0.125)
            results[fuse] = sim.now

        def trigger():
            yield 2.5
            ev.trigger("payload")

        sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
    assert _bits(results[True]) == _bits(results[False])
    assert results[True] == (2.5 + 0.75) + 0.125


def test_event_headed_chain_discards_the_head_value():
    """The resume delivers None — only value-free waits may head a chain."""
    seen = []

    def waiter(sim, ev):
        got = yield (ev, 1.0)
        seen.append(got)

    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse)
        ev = sim.event()
        sim.spawn(waiter(sim, ev))
        sim.call_at(1.0, lambda ev=ev: ev.trigger("ignored"))
        sim.run()
    assert seen == [None, None]


def test_event_headed_chain_on_already_triggered_event():
    results = {}
    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse)
        ev = sim.event()
        ev.trigger("early")

        def waiter():
            yield (ev, 0.5, 0.25)
            results[fuse] = sim.now

        sim.spawn(waiter())
        sim.run()
    assert _bits(results[True]) == _bits(results[False])
    assert results[True] == 0.75


def test_process_headed_chain_propagates_failure():
    """A failed awaited process raises in the waiter; the tail is skipped."""

    from repro.sim.errors import ProcessFailed

    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse, fail_fast=False)

        def failing():
            yield 1.0
            raise RuntimeError("dead")

        proc = sim.spawn(failing())
        caught = []

        def waiter():
            try:
                yield (proc, 100.0)
            except ProcessFailed:
                caught.append(sim.now)

        sim.spawn(waiter())
        sim.run()
        # The exception arrives at the failure instant — the 100 ns tail
        # must NOT be charged on the error path.
        assert caught == [1.0]


def test_signal_headed_chain_parks_once_per_pulse():
    woken = []

    def waiter(sim, sig):
        for _ in range(3):
            yield (sig, 0.5)
            woken.append(sim.now)

    ends = {}
    for fuse in (True, False):
        woken.clear()
        sim = Simulator(fuse_delays=fuse)
        sig = sim.signal()

        def pulser():
            for _ in range(3):
                yield 10.0
                sig.pulse()

        sim.spawn(waiter(sim, sig))
        sim.spawn(pulser())
        sim.run()
        ends[fuse] = tuple(woken)
    assert ends[True] == ends[False] == (10.5, 20.5, 30.5)


# -- fused call_at -------------------------------------------------------------


def test_call_at_fires_callback_at_the_instant_under_fusion():
    for fuse in (True, False):
        sim = Simulator(fuse_delays=fuse)
        seen = []
        sim.call_at(5.0, lambda s=seen: s.append(sim.now))

        def prog():
            yield 10.0

        sim.spawn(prog())
        sim.run()
        assert seen == [5.0]


def test_call_at_callbacks_are_attributed_to_their_own_source():
    sim = Simulator(fuse_delays=True)
    sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)

    def prog():
        yield 3.0

    sim.spawn(prog())
    sim.run()
    snap = sim.metrics_snapshot()
    assert snap.get("kernel.events{source=call_at}") == 2.0
