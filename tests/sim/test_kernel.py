"""Unit tests for the pluggable kernel backends (repro.sim.kernel)."""

import pytest

from repro.sim import (
    KERNEL_ENV_VAR,
    Kernel,
    SerialKernel,
    ShardedKernel,
    Simulator,
    kernel_from_spec,
)
from repro.sim.errors import DeadlockError


# -- kernel_from_spec: the one selection path ---------------------------------


def test_spec_none_and_serial_build_serial():
    assert isinstance(kernel_from_spec(None), SerialKernel)
    assert isinstance(kernel_from_spec("serial"), SerialKernel)
    assert isinstance(kernel_from_spec(""), SerialKernel)


def test_spec_sharded_defaults_and_counts():
    assert kernel_from_spec("sharded").num_shards == ShardedKernel.DEFAULT_LANES
    assert kernel_from_spec("sharded", default_shards=6).num_shards == 6
    assert kernel_from_spec("sharded:4").num_shards == 4
    # An explicit :N wins over the caller's default hint.
    assert kernel_from_spec("sharded:3", default_shards=6).num_shards == 3


def test_spec_case_and_whitespace_insensitive():
    assert isinstance(kernel_from_spec(" Serial "), SerialKernel)
    assert kernel_from_spec(" SHARDED:5 ").num_shards == 5


def test_spec_instance_passthrough():
    kernel = ShardedKernel(num_shards=3)
    assert kernel_from_spec(kernel) is kernel


def test_spec_errors():
    with pytest.raises(ValueError, match="unknown kernel spec"):
        kernel_from_spec("parallel")
    with pytest.raises(ValueError, match="not an integer"):
        kernel_from_spec("sharded:many")
    with pytest.raises(ValueError, match="at least one shard"):
        ShardedKernel(num_shards=0)
    with pytest.raises(TypeError, match="string or Kernel"):
        kernel_from_spec(3)


def test_describe_round_trips():
    assert kernel_from_spec("serial").describe() == "serial"
    assert kernel_from_spec("sharded:3").describe() == "sharded:3"


def test_kernel_attaches_to_exactly_one_simulator():
    kernel = ShardedKernel(num_shards=2)
    Simulator(kernel=kernel)
    with pytest.raises(RuntimeError, match="already attached"):
        Simulator(kernel=kernel)


def test_simulator_accepts_spec_strings():
    assert isinstance(Simulator(kernel="sharded:3").kernel, ShardedKernel)
    assert isinstance(Simulator().kernel, SerialKernel)


# -- lane mapping and inheritance ---------------------------------------------


def test_lane_mapping_reserves_lane_zero_for_host():
    kernel = ShardedKernel(num_shards=6)
    assert kernel.lane_for(None) == 0
    assert [kernel.lane_for(d) for d in range(5)] == [1, 2, 3, 4, 5]
    # More devices than lanes: wrap around the device lanes, never 0.
    assert kernel.lane_for(5) == 1


def test_single_lane_kernel_degenerates_to_lane_zero():
    kernel = ShardedKernel(num_shards=1)
    assert kernel.lane_for(None) == 0
    assert kernel.lane_for(3) == 0


def test_spawned_children_inherit_the_spawners_lane():
    sim = Simulator(kernel="sharded:4")
    lanes = {}

    def child():
        yield 1.0

    def parent():
        proc = sim.spawn(child())  # no shard hint: inherits lane
        lanes["child_lane"] = proc._lane
        yield 2.0

    root = sim.spawn(parent(), shard=2)
    lanes["parent_lane"] = root._lane
    sim.run()
    assert lanes["parent_lane"] == ShardedKernel(4).lane_for(2)
    assert lanes["child_lane"] == lanes["parent_lane"]


# -- dispatch equivalence ------------------------------------------------------


def _mixed_program(sim, log):
    """Two shards of processes exchanging through timers and events."""
    from repro.sim import Event

    evt = Event(sim)

    def pinger():
        yield 2.5
        log.append(("ping", sim.now))
        evt.trigger("token")
        yield 1.0
        log.append(("ping-end", sim.now))

    def ponger():
        value = yield evt
        log.append(("pong", sim.now, value))
        yield 0.5
        log.append(("pong-end", sim.now))

    sim.spawn(pinger(), shard=0)
    sim.spawn(ponger(), shard=1)


@pytest.mark.parametrize("spec", ["serial", "sharded", "sharded:3"])
def test_mixed_program_identical_across_backends(spec):
    baseline = Simulator()
    log_a = []
    _mixed_program(baseline, log_a)
    baseline.run()

    sim = Simulator(kernel=spec)
    log_b = []
    _mixed_program(sim, log_b)
    sim.run()

    assert log_b == log_a
    assert sim.now == baseline.now
    assert sim.events_processed == baseline.events_processed


def test_run_until_stops_at_horizon_boundary():
    sim = Simulator(kernel="sharded:3")
    ticks = []

    def ticker(period):
        while True:
            yield period
            ticks.append((period, sim.now))

    sim.spawn(ticker(3.0), name="t3", shard=0)
    sim.spawn(ticker(5.0), name="t5", shard=1)
    sim.run(until=12.0)
    assert sim.now == 12.0
    assert ticks == [
        (3.0, 3.0), (5.0, 5.0), (3.0, 6.0), (3.0, 9.0),
        (5.0, 10.0), (3.0, 12.0),
    ]


def test_max_events_exact_under_sharded():
    sim = Simulator(kernel="sharded:2")

    def ticker():
        while True:
            yield 1.0

    sim.spawn(ticker(), shard=0)
    sim.spawn(ticker(), shard=1)
    sim.run(max_events=7)
    assert sim.events_processed >= 7


def test_deadlock_detected_under_sharded():
    from repro.sim import Event

    sim = Simulator(kernel="sharded:2")
    evt = Event(sim)

    def stuck():
        yield evt

    sim.spawn(stuck(), shard=0)
    with pytest.raises(DeadlockError):
        sim.run()


# -- sync-overhead observability ----------------------------------------------


def test_sharded_metrics_report_sync_counters():
    sim = Simulator(kernel="sharded:3")
    log = []
    _mixed_program(sim, log)
    sim.run()
    snap = sim.metrics_snapshot()
    assert snap["kernel.shards"] == 3.0
    assert snap["kernel.windows"] >= 1.0
    assert "kernel.preempts" in snap
    assert "kernel.lane_events{lane=1}" in snap
    total_lane_events = sum(
        v for k, v in snap.items() if k.startswith("kernel.lane_events")
    )
    assert total_lane_events == sim.events_processed


def test_serial_metrics_have_no_sharded_series():
    sim = Simulator()
    snap = sim.metrics_snapshot()
    # The serial backend still exports the backend-independent counters
    # (delay fusion + event-source attribution)…
    assert snap["kernel.fused_yields"] == 0.0
    # …but none of the sharded window-protocol series.
    for key in ("kernel.shards", "kernel.windows", "kernel.preempts",
                "kernel.stale_discards", "kernel.lookahead_ns"):
        assert key not in snap


def test_event_source_attribution():
    sim = Simulator()
    log = []
    _mixed_program(sim, log)
    sim.run()
    snap = sim.metrics_snapshot()
    sources = {
        k: v for k, v in snap.items() if k.startswith("kernel.events{source=")
    }
    assert sources, "dispatch should attribute events to sources"
    assert sum(sources.values()) == float(sim.events_processed)


def test_lookahead_counts_subhorizon_wakes():
    from repro.sim import Event

    # 3 lanes so the two shards land on distinct device lanes.
    kernel = ShardedKernel(num_shards=3, lookahead_ns=100.0)
    sim = Simulator(kernel=kernel)
    evt = Event(sim)

    def waker():
        yield 5.0
        evt.trigger(None)  # cross-lane wake far below the lookahead
        yield 50.0

    def sleeper():
        yield evt

    sim.spawn(waker(), shard=0)
    sim.spawn(sleeper(), shard=1)
    sim.run()
    snap = sim.metrics_snapshot()
    assert snap["kernel.lookahead_ns"] == 100.0
    assert snap["kernel.subhorizon_wakes"] >= 1.0


# -- environment override ------------------------------------------------------


def test_env_var_selects_backend_for_systems(monkeypatch):
    from repro.rcce.session import RcceSession
    from repro.vscc.system import VSCCSystem

    monkeypatch.setenv(KERNEL_ENV_VAR, "sharded:4")
    assert isinstance(VSCCSystem(num_devices=2).kernel, ShardedKernel)
    assert VSCCSystem(num_devices=2).kernel.num_shards == 4
    assert RcceSession().kernel.num_shards == 4

    # An explicit kernel= beats the environment.
    monkeypatch.setenv(KERNEL_ENV_VAR, "sharded:4")
    assert isinstance(VSCCSystem(num_devices=2, kernel="serial").kernel, SerialKernel)

    # A bare "sharded" env spec gets one lane per device plus the host lane.
    monkeypatch.setenv(KERNEL_ENV_VAR, "sharded")
    assert VSCCSystem(num_devices=5).kernel.num_shards == 6
