"""Unit tests for SimQueue."""

from repro.sim.engine import Delay, Simulator
from repro.sim.queue import SimQueue


def test_put_then_get():
    sim = Simulator()
    q = SimQueue(sim)
    q.put("x")

    def prog():
        item = yield from q.get()
        return item

    proc = sim.spawn(prog())
    sim.run()
    assert proc.result == "x"


def test_get_blocks_until_put():
    sim = Simulator()
    q = SimQueue(sim)
    got = {}

    def getter():
        got["item"] = yield from q.get()
        got["t"] = sim.now

    def putter():
        yield Delay(42.0)
        q.put("late")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert got == {"item": "late", "t": 42.0}


def test_fifo_order_among_waiters():
    sim = Simulator()
    q = SimQueue(sim)
    results = []

    def getter(name):
        item = yield from q.get()
        results.append((name, item))

    sim.spawn(getter("first"))
    sim.spawn(getter("second"))

    def putter():
        yield Delay(1.0)
        q.put(1)
        q.put(2)

    sim.spawn(putter())
    sim.run()
    assert results == [("first", 1), ("second", 2)]


def test_drain_and_len():
    sim = Simulator()
    q = SimQueue(sim)
    for i in range(3):
        q.put(i)
    assert len(q) == 3
    assert q.drain() == [0, 1, 2]
    assert q.empty
