"""Unit tests for Link and Mutex."""

import pytest

from repro.sim.engine import Delay, Simulator
from repro.sim.resources import Link, Mutex


def make_link(sim, latency=100.0, bandwidth=1.0, overhead=10.0):
    return Link(sim, "l", latency_ns=latency, bandwidth_bpns=bandwidth, overhead_ns=overhead)


def test_transfer_time_is_overhead_serialization_latency():
    sim = Simulator()
    link = make_link(sim)

    def prog():
        yield from link.transfer(50)
        return sim.now

    proc = sim.spawn(prog())
    sim.run()
    # 10 overhead + 50 B / 1 B/ns + 100 latency
    assert proc.result == pytest.approx(160.0)


def test_fifo_serialization_under_contention():
    sim = Simulator()
    link = make_link(sim)
    times = {}

    def prog(name, nbytes):
        yield from link.transfer(nbytes)
        times[name] = sim.now

    sim.spawn(prog("a", 100))
    sim.spawn(prog("b", 100))
    sim.run()
    # b's serialization starts only when a's finishes: latencies overlap.
    assert times["a"] == pytest.approx(10 + 100 + 100)
    assert times["b"] == pytest.approx(10 + 100 + 10 + 100 + 100)


def test_post_delivers_on_arrival_and_preserves_order():
    sim = Simulator()
    link = make_link(sim)
    arrivals = []
    link.post(32, on_arrival=lambda: arrivals.append(("first", sim.now)))
    link.post(32, on_arrival=lambda: arrivals.append(("second", sim.now)))
    sim.run()
    assert [name for name, _t in arrivals] == ["first", "second"]
    assert arrivals[0][1] < arrivals[1][1]


def test_extra_overhead_shifts_later_traffic():
    sim = Simulator()
    link = make_link(sim)
    ev1 = link.post(10, extra_overhead_ns=500.0)
    ev2 = link.post(10)
    done = {}
    ev1.on_trigger(lambda _v: done.setdefault(1, sim.now))
    ev2.on_trigger(lambda _v: done.setdefault(2, sim.now))
    sim.run()
    assert done[2] - done[1] == pytest.approx(10 + 10)  # second's serialization


def test_link_counts_bytes():
    sim = Simulator()
    link = make_link(sim)
    link.post(100)
    link.post(28)
    sim.run()
    assert link.bytes_carried == 128
    assert link.transfers == 2


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, "bad", latency_ns=-1, bandwidth_bpns=1)
    with pytest.raises(ValueError):
        Link(sim, "bad", latency_ns=1, bandwidth_bpns=0)
    link = make_link(sim)
    with pytest.raises(ValueError):
        link.post(-5)


def test_mutex_mutual_exclusion_fifo():
    sim = Simulator()
    mutex = Mutex(sim)
    order = []

    def prog(name, hold):
        yield from mutex.acquire()
        order.append((name, "in", sim.now))
        yield Delay(hold)
        mutex.release()

    sim.spawn(prog("a", 10))
    sim.spawn(prog("b", 5))
    sim.spawn(prog("c", 1))
    sim.run()
    assert [n for n, _s, _t in order] == ["a", "b", "c"]
    assert [t for _n, _s, t in order] == [0.0, 10.0, 15.0]


def test_mutex_release_unlocked_raises():
    sim = Simulator()
    mutex = Mutex(sim)
    with pytest.raises(RuntimeError):
        mutex.release()
