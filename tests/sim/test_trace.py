"""Unit tests for the tracer."""

from repro.sim.trace import Tracer


def test_disabled_categories_cost_nothing():
    tracer = Tracer()
    tracer.emit(1.0, "noise", "x")
    assert len(tracer) == 0


def test_enabled_categories_record():
    tracer = Tracer()
    tracer.enable("flags", "mesh")
    tracer.emit(1.0, "flags", "set", 3)
    tracer.emit(2.0, "mesh", "hop")
    tracer.emit(3.0, "other")
    records = list(tracer.select("flags"))
    assert len(tracer) == 2
    assert records[0].payload == ("set", 3)


def test_disable_and_clear():
    tracer = Tracer()
    tracer.enable("a")
    tracer.emit(0.0, "a")
    tracer.disable("a")
    tracer.emit(1.0, "a")
    assert len(tracer) == 1
    tracer.clear()
    assert len(tracer) == 0
