"""The policy layer: per-route scheme selection (tentpole of PR 4).

Contracts under test:

1. **static equivalence** — ``policy=StaticPolicy(s)`` is bit-identical
   to the historic ``scheme=s`` (same clock, same event count, same
   metrics);
2. **threshold optimality** — on a per-size ping-pong sweep the
   :class:`ThresholdPolicy` matches the best *fixed* scheme at every
   size (it never pays the wrong side of a Fig 6b crossover);
3. **determinism** — dynamic-policy runs replay bit-identically from a
   fresh system (the decision journal keeps both end points agreeing,
   and no policy consults wall-clock or randomness);
4. **feedback** — :class:`AdaptivePolicy` probes every candidate, then
   exploits the per-(route, size-class) throughput EWMAs.
"""

import json

import pytest

from repro.vscc.policy import AdaptivePolicy, Route, StaticPolicy, ThresholdPolicy
from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem

CACHED = CommScheme.LOCAL_PUT_REMOTE_GET
VDMA = CommScheme.LOCAL_PUT_LOCAL_GET_VDMA

CROSS_PAIR = (0, 48)  # ranks on device 0 and device 1


def _transfer_program(sizes, results=None):
    def program(comm):
        for size in sizes:
            if comm.rank == CROSS_PAIR[0]:
                yield from comm.send(bytes(size), CROSS_PAIR[1])
            else:
                data = yield from comm.recv(size, CROSS_PAIR[0])
                if results is not None:
                    results[size] = bytes(data)

    return program


def _run(sizes, **system_kwargs):
    system = VSCCSystem(num_devices=2, **system_kwargs)
    result = system.run(_transfer_program(sizes), ranks=list(CROSS_PAIR))
    return system, result


# -- 1. static equivalence ---------------------------------------------------------


@pytest.mark.parametrize("scheme", [CACHED, VDMA, CommScheme.TRANSPARENT])
def test_static_policy_bit_identical_to_scheme_kwarg(scheme):
    sizes = (32, 2048, 16384)
    sys_a, _ = _run(sizes, scheme=scheme)
    sys_b, _ = _run(sizes, policy=StaticPolicy(scheme))
    assert sys_a.sim.now == sys_b.sim.now
    assert sys_a.sim.events_processed == sys_b.sim.events_processed
    assert sys_a.metrics == sys_b.metrics


def test_scheme_kwarg_is_sugar_for_static_policy():
    system = VSCCSystem(num_devices=2, scheme=VDMA)
    assert isinstance(system.policy, StaticPolicy)
    assert system.policy.static_scheme is VDMA
    assert system.scheme is VDMA


def test_dynamic_policy_has_no_static_scheme():
    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    assert system.scheme is None
    assert system.policy.static_scheme is None


def test_scheme_and_policy_are_mutually_exclusive():
    with pytest.raises(ValueError, match="not both"):
        VSCCSystem(num_devices=2, scheme=VDMA, policy=ThresholdPolicy())


def test_policy_must_be_a_scheme_policy():
    with pytest.raises(TypeError, match="SchemePolicy"):
        VSCCSystem(num_devices=2, policy=VDMA)


def test_direct_threshold_override_requires_static_policy():
    with pytest.raises(ValueError, match="static"):
        VSCCSystem(num_devices=2, policy=ThresholdPolicy(), direct_threshold=48)


# -- 2. threshold optimality -------------------------------------------------------


def _pingpong_program(size, iterations=4):
    def program(comm):
        payload = bytes(size)
        for _ in range(iterations):
            if comm.rank == CROSS_PAIR[0]:
                yield from comm.send(payload, CROSS_PAIR[1])
                yield from comm.recv(size, CROSS_PAIR[1])
            else:
                yield from comm.recv(size, CROSS_PAIR[0])
                yield from comm.send(payload, CROSS_PAIR[0])

    return program


def test_threshold_matches_best_fixed_scheme_at_every_size():
    """Acceptance criterion: on a ping-pong sweep the three-band rule
    never loses to a fixed scheme — direct band, cached-get band, and
    past-the-cliff band."""

    def elapsed(**kwargs):
        system = VSCCSystem(num_devices=2, **kwargs)
        return system.run(
            _pingpong_program(size), ranks=list(CROSS_PAIR)
        ).elapsed_ns

    for size in (32, 512, 4096, 16384, 65536):
        fixed = {
            scheme: elapsed(scheme=scheme) for scheme in (CACHED, VDMA)
        }
        threshold = elapsed(policy=ThresholdPolicy())
        assert threshold <= min(fixed.values()), (
            f"ThresholdPolicy lost at {size} B: {threshold} ns vs {fixed}"
        )


def test_threshold_band_rule():
    policy = ThresholdPolicy(direct_bytes=64)
    route = Route(src_device=0, dst_device=1, chunk_bytes=7680)
    assert policy.choose(0, 48, 64, route) is VDMA       # direct band
    assert policy.choose(0, 48, 65, route) is CACHED     # mid band
    assert policy.choose(0, 48, 7680, route) is CACHED   # last single-chunk size
    assert policy.choose(0, 48, 7681, route) is VDMA     # past the cliff
    explicit = ThresholdPolicy(direct_bytes=0, vdma_cutover=4096)
    assert explicit.choose(0, 48, 4096, route) is CACHED
    assert explicit.choose(0, 48, 4097, route) is VDMA


def test_threshold_validation():
    with pytest.raises(ValueError, match="direct_bytes"):
        ThresholdPolicy(direct_bytes=-1)
    with pytest.raises(ValueError, match="undercut"):
        ThresholdPolicy(direct_bytes=256, vdma_cutover=128)


def test_threshold_run_uses_both_transports():
    sizes = (2048, 16384)
    system, result = _run(sizes, policy=ThresholdPolicy())
    metrics = result.metrics
    assert metrics[f"policy.decisions{{scheme={CACHED.value}}}"] >= 1.0
    assert metrics[f"policy.decisions{{scheme={VDMA.value}}}"] >= 1.0
    assert metrics["scheme.selected{transport=rcce-default}"] >= 2.0
    assert metrics["scheme.selected{transport=local-put-local-get-vdma}"] >= 2.0


def test_payloads_intact_under_mixed_schemes():
    sizes = (16, 2048, 16384, 65536)
    results = {}
    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())

    def program(comm):
        for size in sizes:
            payload = bytes(i % 251 for i in range(size))
            if comm.rank == CROSS_PAIR[0]:
                yield from comm.send(payload, CROSS_PAIR[1])
            else:
                data = yield from comm.recv(size, CROSS_PAIR[0])
                results[size] = bytes(data) == payload

    system.run(program, ranks=list(CROSS_PAIR))
    assert all(results[size] for size in sizes)


# -- 3. determinism ----------------------------------------------------------------


@pytest.mark.parametrize(
    "make_policy",
    [ThresholdPolicy, lambda: AdaptivePolicy(probe_every=4)],
    ids=["threshold", "adaptive"],
)
def test_dynamic_policy_runs_replay_bit_identically(make_policy):
    sizes = (128, 4096, 16384) * 4

    def run():
        system, result = _run(sizes, policy=make_policy())
        return system.sim.now, system.sim.events_processed, result.metrics

    assert run() == run()


def test_bidirectional_traffic_keeps_endpoints_agreeing():
    """Both directions of one pair journal independently; mixed sizes in
    both directions must not desynchronize the transports."""
    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    sizes = (512, 16384, 64, 9000)
    ok = {}

    def program(comm):
        me, other = comm.rank, (48 if comm.rank == 0 else 0)
        for size in sizes:
            if comm.rank == 0:
                yield from comm.send(bytes(size), other)
                data = yield from comm.recv(size, other)
            else:
                data = yield from comm.recv(size, other)
                yield from comm.send(bytes(size), other)
            ok[(me, size)] = len(data) == size

    system.run(program, ranks=[0, 48])
    assert all(ok.values())


# -- 4. adaptive feedback ----------------------------------------------------------


def test_adaptive_probes_then_exploits():
    policy = AdaptivePolicy(probe_every=1024)  # no re-probe inside this run
    sizes = (16384,) * 20
    system, result = _run(sizes, policy=policy)
    route = Route(src_device=0, dst_device=1, chunk_bytes=7680)
    ewma_cached = policy.ewma(route, CACHED, 16384)
    ewma_vdma = policy.ewma(route, VDMA, 16384)
    # Both candidates were probed (one sample each minimum) ...
    assert ewma_cached is not None and ewma_vdma is not None
    # ... and past the MPB cliff the vDMA engine pipelines better, so
    # every post-probe decision exploits it (calibration: Fig 6b).
    assert ewma_vdma > ewma_cached
    # Early decisions may double-probe (the receiver's journal lookup
    # can run ahead of the sender's first completed-send feedback), but
    # once both EWMAs exist, exploitation locks onto the vDMA engine.
    metrics = result.metrics
    cached_n = metrics[f"policy.decisions{{scheme={CACHED.value}}}"]
    vdma_n = metrics[f"policy.decisions{{scheme={VDMA.value}}}"]
    assert cached_n + vdma_n == 20.0
    assert 1.0 <= cached_n <= 3.0
    assert vdma_n >= 17.0


def test_adaptive_validation():
    with pytest.raises(ValueError, match="at least one"):
        AdaptivePolicy(candidates=())
    with pytest.raises(ValueError, match="duplicate"):
        AdaptivePolicy(candidates=(VDMA, VDMA))
    with pytest.raises(ValueError, match="alpha"):
        AdaptivePolicy(alpha=0.0)
    with pytest.raises(ValueError, match="probe_every"):
        AdaptivePolicy(probe_every=-1)


def test_adaptive_route_gauges_when_obs_enabled():
    system = VSCCSystem(num_devices=2, policy=AdaptivePolicy())
    system.obs.enabled = True
    system.run(_transfer_program((4096, 16384)), ranks=list(CROSS_PAIR))
    gauges = [
        key for key in system.metrics if key.startswith("policy.route_mbps")
    ]
    assert gauges, "expected policy.route_mbps{src=,dst=,scheme=} gauges"


# -- host capability derivation ----------------------------------------------------


def test_host_capabilities_follow_policy_scheme_set():
    plain = VSCCSystem(num_devices=2, policy=StaticPolicy(CommScheme.TRANSPARENT))
    assert not plain.host.extensions_enabled
    dynamic = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    assert dynamic.host.extensions_enabled


def test_wildcard_recv_works_in_cached_band_of_threshold_policy():
    from repro.ircce.nonblocking import recv_any_source

    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    got = {}

    def program(comm):
        if comm.rank == 0:
            src, data = yield from recv_any_source(comm, 2000, [48, 49])
            got["src"] = src
            got["ok"] = bytes(data) == bytes([src % 251]) * 2000
        elif comm.rank == 49:
            yield from comm.send(bytes([49 % 251]) * 2000, 0)

    system.run(program, ranks=[0, 49])
    assert got["src"] == 49 and got["ok"]


# -- trace integration -------------------------------------------------------------


def test_policy_decisions_land_in_chrome_trace(tmp_path):
    trace = tmp_path / "trace.json"
    system = VSCCSystem(num_devices=2, policy=ThresholdPolicy())
    system.run(
        _transfer_program((2048, 16384)),
        ranks=list(CROSS_PAIR),
        trace_json=trace,
    )
    events = json.loads(trace.read_text())["traceEvents"]
    policy_events = [e for e in events if e.get("cat") == "policy"]
    assert len(policy_events) >= 2
    names = {e["name"] for e in policy_events}
    assert f"policy.{CACHED.value}" in names
    assert f"policy.{VDMA.value}" in names
