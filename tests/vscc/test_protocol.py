"""Integration tests: every scheme moves correct data, all directions."""

import numpy as np
import pytest

from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem

ALL_SCHEMES = list(CommScheme)


def exchange(system, a, b, size):
    payload = (np.arange(size, dtype=np.int64) * 7 % 251).astype(np.uint8)
    got = {}

    def program(comm):
        peer = b if comm.rank == a else a
        if comm.rank == a:
            yield from comm.send(payload, peer)
            got["back"] = yield from comm.recv(size, peer)
        else:
            data = yield from comm.recv(size, peer)
            yield from comm.send(data, peer)

    system.run(program, ranks=[a, b])
    assert bytes(got["back"]) == payload.tobytes()


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
@pytest.mark.parametrize("size", [1, 64, 4096, 8192, 20000])
def test_cross_device_integrity(scheme, size):
    system = VSCCSystem(num_devices=2, scheme=scheme)
    exchange(system, 0, 48, size)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
def test_onchip_still_works(scheme):
    system = VSCCSystem(num_devices=2, scheme=scheme)
    exchange(system, 0, 13, 10000)


def test_three_devices_vdma_chain():
    """Relay a message across all three devices."""
    system = VSCCSystem(num_devices=3, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)
    payload = (np.arange(9000) % 251).astype(np.uint8)
    got = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(payload, 48)
        elif comm.rank == 48:
            data = yield from comm.recv(9000, 0)
            yield from comm.send(data, 96)
        elif comm.rank == 96:
            got["data"] = yield from comm.recv(9000, 48)

    system.run(program, ranks=[0, 48, 96])
    assert (got["data"] == payload).all()


def test_concurrent_cross_device_pairs():
    """Multiple pairs sharing the PCIe cables stay correct."""
    system = VSCCSystem(num_devices=2, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)
    pairs = [(0, 48), (1, 49), (2, 50), (3, 51)]
    got = {}

    def program(comm):
        for a, b in pairs:
            if comm.rank == a:
                payload = bytes([a]) * 6000
                yield from comm.send(payload, b)
            elif comm.rank == b:
                got[b] = yield from comm.recv(6000, a)

    system.run(program, ranks=[r for pair in pairs for r in pair])
    for a, b in pairs:
        assert bytes(got[b]) == bytes([a]) * 6000


def test_bidirectional_same_pair_cross_device():
    """Simultaneous opposite-direction traffic on one pair."""
    system = VSCCSystem(num_devices=2, scheme=CommScheme.REMOTE_PUT_WCB)
    got = {}

    def program(comm):
        peer = 48 if comm.rank == 0 else 0
        mine = bytes([comm.rank + 1]) * 9000
        if comm.rank == 0:
            yield from comm.send(mine, peer)
            got[0] = yield from comm.recv(9000, peer)
        else:
            got[48] = yield from comm.recv(9000, peer)
            yield from comm.send(mine, peer)

    system.run(program, ranks=[0, 48])
    assert bytes(got[0]) == bytes([49]) * 9000
    assert bytes(got[48]) == bytes([1]) * 9000


def test_throughput_ordering_of_schemes():
    """The paper's qualitative ordering at a large message size."""
    from repro.apps.pingpong import run_pingpong

    peaks = {}
    for scheme in ALL_SCHEMES:
        system = VSCCSystem(num_devices=2, scheme=scheme)
        [point] = run_pingpong(system, 0, 48, sizes=[131072], iterations=2)
        peaks[scheme] = point.throughput_mbps
    assert peaks[CommScheme.TRANSPARENT] < 0.2 * peaks[CommScheme.LOCAL_PUT_REMOTE_GET]
    assert peaks[CommScheme.LOCAL_PUT_REMOTE_GET] < peaks[CommScheme.LOCAL_PUT_LOCAL_GET_VDMA]
    assert peaks[CommScheme.LOCAL_PUT_LOCAL_GET_VDMA] <= 1.05 * peaks[CommScheme.HW_ACCEL_REMOTE_PUT]


# -- host-path CRC/sequence envelope (repro.faults link layer) -----------------


def test_host_packet_roundtrip():
    from repro.vscc.protocol import HostPacket

    packet = HostPacket(seq=7, nbytes=1920)
    raw = packet.encode()
    assert len(raw) == 12
    decoded = HostPacket.decode(raw)
    assert decoded == packet


def test_host_packet_rejects_any_single_bit_flip():
    from repro.vscc.protocol import HostPacket

    raw = bytearray(HostPacket(seq=3, nbytes=512).encode())
    for bit in range(len(raw) * 8):
        flipped = bytearray(raw)
        flipped[bit >> 3] ^= 1 << (bit & 7)
        assert HostPacket.decode(bytes(flipped)) is None, f"bit {bit} slipped through"


def test_host_packet_rejects_wrong_length():
    from repro.vscc.protocol import HostPacket

    raw = HostPacket(seq=0, nbytes=1).encode()
    assert HostPacket.decode(raw[:-1]) is None
    assert HostPacket.decode(raw + b"\x00") is None
    assert HostPacket.decode(b"") is None


def test_sequence_tracker_accepts_in_order_and_dedups():
    from repro.vscc.protocol import SequenceTracker

    rx = SequenceTracker()
    assert rx.accept(0) and rx.accept(1)
    assert not rx.accept(1)           # duplicate: dropped, counted
    assert rx.accept(2)
    assert rx.delivered == 3
    assert rx.duplicates == 1
    assert rx.expected == 3


def test_sequence_tracker_raises_on_gap():
    import pytest as _pytest

    from repro.vscc.protocol import ProtocolViolation, SequenceTracker

    rx = SequenceTracker()
    rx.accept(0)
    with _pytest.raises(ProtocolViolation):
        rx.accept(2)                  # 1 is still outstanding
