"""Unit tests for scheme metadata and selector wiring."""

import pytest

from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


def test_extension_requirements():
    assert not CommScheme.TRANSPARENT.needs_extensions
    assert not CommScheme.HW_ACCEL_REMOTE_PUT.needs_extensions
    assert CommScheme.LOCAL_PUT_LOCAL_GET_VDMA.needs_extensions
    assert CommScheme.REMOTE_PUT_WCB.needs_extensions
    assert CommScheme.LOCAL_PUT_REMOTE_GET.needs_extensions


def test_stability():
    """§2.3: fast write acks are unstable beyond two devices."""
    assert not CommScheme.HW_ACCEL_REMOTE_PUT.stable_beyond_two_devices
    for scheme in CommScheme:
        if scheme is not CommScheme.HW_ACCEL_REMOTE_PUT:
            assert scheme.stable_beyond_two_devices


def test_hw_accel_refused_on_five_devices():
    with pytest.raises(ValueError, match="unstable"):
        VSCCSystem(num_devices=5, scheme=CommScheme.HW_ACCEL_REMOTE_PUT)
    VSCCSystem(
        num_devices=5, scheme=CommScheme.HW_ACCEL_REMOTE_PUT, allow_unstable=True
    )


def test_thresholds_in_paper_range():
    """§3.3: 'about 32 B to 128 B dependent on the communication scheme'."""
    for scheme in CommScheme:
        if scheme.needs_extensions:
            assert 32 <= scheme.direct_threshold <= 128
        else:
            assert scheme.direct_threshold == 0


def test_direct_threshold_name_removed_but_warns():
    """The dict is gone from the public surface; the module-level name
    survives only as a warning shim until repro 1.2."""
    import repro.vscc
    import repro.vscc.schemes as schemes

    assert "DIRECT_THRESHOLD" not in schemes.__all__
    assert "DIRECT_THRESHOLD" not in repro.vscc.__all__
    with pytest.warns(DeprecationWarning, match="repro 1.2"):
        legacy = schemes.DIRECT_THRESHOLD
    assert legacy[CommScheme.REMOTE_PUT_WCB] == (
        CommScheme.REMOTE_PUT_WCB.direct_threshold
    )


def test_selector_picks_by_locality_and_size():
    system = VSCCSystem(num_devices=2, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)
    comm = system.comm_for(0)
    assert system.selector.select(comm, 1, 4096).name == "rcce-default"
    assert system.selector.select(comm, 48, 64).name == "direct-small"
    assert system.selector.select(comm, 48, 4096).name == "local-put-local-get-vdma"


def test_transparent_has_no_direct_path():
    system = VSCCSystem(num_devices=2, scheme=CommScheme.TRANSPARENT)
    comm = system.comm_for(0)
    assert system.selector.select(comm, 48, 8).name == "rcce-default"
