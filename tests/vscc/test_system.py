"""Unit tests for the VSCCSystem façade."""

import pytest

from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


def test_full_system_has_240_ranks():
    system = VSCCSystem(num_devices=5)
    assert system.num_ranks == 240


def test_failures_shrink_rank_space():
    system = VSCCSystem(num_devices=5, failure_prob=0.05, seed=3)
    assert system.num_ranks < 240
    # "we have extended the startup script of RCCE thereby that it
    # creates a new configuration file with all available cores" (§4)
    assert system.config.total_cores == system.num_ranks
    # the config file round-trips through its text form
    from repro.rcce.config import SccConfigFile

    assert SccConfigFile.from_text(system.config.to_text()) == system.config


def test_seed_reproducible():
    a = VSCCSystem(num_devices=2, failure_prob=0.1, seed=42)
    b = VSCCSystem(num_devices=2, failure_prob=0.1, seed=42)
    assert a.config == b.config


def test_extensions_follow_scheme():
    assert VSCCSystem(num_devices=2, scheme=CommScheme.TRANSPARENT).host.extensions_enabled is False
    assert VSCCSystem(num_devices=2, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA).host.extensions_enabled is True


def test_regions_registered_for_every_core():
    system = VSCCSystem(num_devices=2)
    from repro.host.regions import RegionKind
    from repro.scc.mpb import MpbAddr

    assert system.host.regions.classify(MpbAddr(1, 47, 0), 32) is RegionKind.BUFFER
    assert system.host.regions.classify(MpbAddr(0, 0, 7681)) is RegionKind.FLAG


def test_launch_subset_and_results():
    system = VSCCSystem(num_devices=2)

    def program(comm):
        yield from comm.env.compute(cycles=1)
        return comm.rank

    with pytest.warns(DeprecationWarning, match="launch"):
        results = system.launch(program, ranks=[0, 90])
    assert results == {0: 0, 90: 90}


def test_traffic_matrix_shape():
    system = VSCCSystem(num_devices=2)
    matrix = system.traffic_matrix()
    assert matrix.shape == (96, 96)
    assert matrix.sum() == 0
