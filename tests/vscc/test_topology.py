"""Unit tests for the (x, y, device, host) topology."""

import pytest

from repro.vscc.schemes import CommScheme
from repro.vscc.system import VSCCSystem


@pytest.fixture(scope="module")
def system():
    return VSCCSystem(num_devices=3, scheme=CommScheme.LOCAL_PUT_LOCAL_GET_VDMA)


def test_device_coordinate(system):
    topo = system.topology
    assert topo.coords(0) == (0, 0, 0, 0)
    assert topo.coords(48) == (0, 0, 1, 0)
    assert topo.coords(96 + 47) == (5, 3, 2, 0)
    assert topo.num_devices() == 3


def test_xyz_shim_warns_but_still_answers(system):
    topo = system.topology
    with pytest.warns(DeprecationWarning, match="coords"):
        assert topo.xyz(48) == (0, 0, 1)


def test_mesh_hops_only_same_device(system):
    topo = system.topology
    assert topo.mesh_hops(0, 47) == 8
    with pytest.raises(ValueError):
        topo.mesh_hops(0, 48)


def test_path_hops_funnel_through_sif(system):
    topo = system.topology
    onchip, z = topo.path_hops(0, 10)
    assert z == 0
    cross, z = topo.path_hops(0, 48)
    assert z == 1
    # both end points pay their distance to tile (3, 0)
    assert cross == 3 + 3


def test_is_cross_device(system):
    assert not system.topology.is_cross_device(0, 47)
    assert system.topology.is_cross_device(47, 48)
