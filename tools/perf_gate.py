#!/usr/bin/env python
"""Performance gate: compare a fresh bench run against the checked-in baseline.

Runs ``benchmarks/bench_wallclock.py`` (or accepts a pre-measured run via
``--fresh``) and compares every scenario against ``BENCH_wallclock.json``
at the repo root:

* **fingerprints** (``sim_now_ns``, ``events``, traffic totals, …) must
  match the baseline exactly — a mismatch means the simulation produces
  different *results*, which is a correctness failure, never acceptable;
* **wall_s** may not exceed the baseline by more than the baseline's
  ``tolerance`` (15 % by default; a per-scenario ``tolerance_overrides``
  map in the baseline widens individual scenarios that sit close to
  their anchor) — a wall-clock regression.

``--check-fusion`` additionally runs the paired delay-fusion check: the
fig7_bt scenarios are measured twice, with delay fusion enabled
(``REPRO_FUSE=1``) and disabled (``REPRO_FUSE=0``), and their simulated
fingerprints must agree on every field except ``events`` (fusing
collapses wake-ups, so the event count legitimately shrinks; simulated
time and all semantic results may not move by one ulp). This is the
soundness proof-by-measurement for the fused fast path (DESIGN.md §12).

Failures come in two classes: *fingerprint* failures (correctness —
always block unless ``--advisory``) and *wall-clock* failures (noise-
prone — additionally soft under ``--wall-advisory``, the CI smoke mode
for shared runners).

Usage::

    PYTHONPATH=src python tools/perf_gate.py                  # measure + gate
    PYTHONPATH=src python tools/perf_gate.py --advisory       # report only
    PYTHONPATH=src python tools/perf_gate.py --fresh run.json # gate a prior run
    PYTHONPATH=src python tools/perf_gate.py --fusion-only    # paired check only
    PYTHONPATH=src python tools/perf_gate.py \
        --scenario serve_mixed_tenants                        # gate a subset
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_wallclock.json"

#: Keys that are measurements, not simulated-result fingerprints.
_NON_FINGERPRINT_KEYS = {"wall_s", "before_wall_s", "speedup", "skipped"}

#: Scenario pairs whose *fresh* fingerprints must agree with each other:
#: the same workload run on two kernel backends (DESIGN.md §11). A
#: drift here is a cross-backend correctness failure even when each
#: scenario individually matches its own baseline.
_PAIRED_FINGERPRINTS = {"fig7_bt_sharded": "fig7_bt"}

#: Scenarios measured by the paired fused-vs-unfused check.
_FUSION_SCENARIOS = ("fig7_bt", "fig7_bt_sharded")

#: Fingerprint fields allowed to differ between fused and unfused runs:
#: fusing collapses consecutive wake-ups into one, so the event count
#: legitimately shrinks. Everything else must be bit-identical.
_FUSE_VARIANT_KEYS = {"events"}


def fingerprint_of(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k not in _NON_FINGERPRINT_KEYS}


def fingerprint_drift(base_fp: dict, fresh_fp: dict) -> list[str]:
    """Per-field drift report between two fingerprints (empty = equal).

    Names every field that changed value, vanished, or newly appeared,
    so a failing gate says *which* simulated result moved instead of
    dumping two whole dicts to eyeball.
    """
    drifts: list[str] = []
    for key in sorted(set(base_fp) | set(fresh_fp)):
        if key not in fresh_fp:
            drifts.append(f"{key}: missing from fresh run (baseline {base_fp[key]!r})")
        elif key not in base_fp:
            drifts.append(f"{key}: new field not in baseline (fresh {fresh_fp[key]!r})")
        elif base_fp[key] != fresh_fp[key]:
            drifts.append(f"{key}: {base_fp[key]!r} -> {fresh_fp[key]!r}")
    return drifts


def measure(
    repeat: int,
    scenarios: list[str] | None = None,
    env_overrides: dict[str, str] | None = None,
) -> dict:
    """Run the wall-clock harness in a subprocess, return its document."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_overrides:
        env.update(env_overrides)
    cmd = [
        sys.executable,
        str(REPO_ROOT / "benchmarks" / "bench_wallclock.py"),
        "--repeat",
        str(repeat),
        "--out",
        str(out_path),
    ]
    for name in scenarios or ():
        cmd += ["--scenario", name]
    try:
        subprocess.run(cmd, check=True, env=env, cwd=REPO_ROOT)
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


def check_fusion(repeat: int = 1) -> list[str]:
    """Paired fused-vs-unfused run; returns fingerprint-class failures.

    Measures ``_FUSION_SCENARIOS`` under ``REPRO_FUSE=1`` and
    ``REPRO_FUSE=0`` and demands bit-identical fingerprints modulo the
    event count. Any drift means a fused fast path changed *what* the
    simulation computes, not just how fast — a correctness failure.
    """
    print("paired delay-fusion check (REPRO_FUSE=1 vs REPRO_FUSE=0):")
    names = list(_FUSION_SCENARIOS)
    fused = measure(repeat, names, {"REPRO_FUSE": "1"})
    unfused = measure(repeat, names, {"REPRO_FUSE": "0"})
    failures: list[str] = []
    for name in names:
        fused_entry = fused.get("scenarios", {}).get(name)
        unfused_entry = unfused.get("scenarios", {}).get(name)
        if fused_entry is None or unfused_entry is None:
            failures.append(f"fusion-check {name}: scenario missing from a run")
            continue
        fused_fp = {
            k: v
            for k, v in fingerprint_of(fused_entry).items()
            if k not in _FUSE_VARIANT_KEYS
        }
        unfused_fp = {
            k: v
            for k, v in fingerprint_of(unfused_entry).items()
            if k not in _FUSE_VARIANT_KEYS
        }
        drifts = fingerprint_drift(unfused_fp, fused_fp)
        if drifts:
            failures.append(
                f"fusion-check {name}: fused run diverges from unfused "
                f"(unfused -> fused):"
            )
            failures.extend(f"    {name}.{drift}" for drift in drifts)
            print(f"  {name}: FUSED/UNFUSED MISMATCH")
        else:
            fused_events = fused_entry.get("events")
            unfused_events = unfused_entry.get("events")
            print(
                f"  {name}: bit-identical "
                f"(events {unfused_events} unfused -> {fused_events} fused)"
            )
    return failures


def gate(baseline: dict, fresh: dict) -> tuple[list[str], list[str]]:
    """Compare fresh vs baseline; returns (fingerprint, wall) failures."""
    failures: list[str] = []
    wall_failures: list[str] = []
    tolerance = baseline.get("tolerance", 0.15)
    overrides = baseline.get("tolerance_overrides", {})
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})

    print(f"{'scenario':26s} {'base_s':>9s} {'fresh_s':>9s} {'ratio':>7s}  status")
    for name, base in sorted(base_scenarios.items()):
        entry = fresh_scenarios.get(name)
        if entry is None:
            failures.append(f"{name}: missing from the fresh run")
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  MISSING")
            continue
        if "skipped" in base or "skipped" in entry:
            status = "skipped"
            if ("skipped" in entry) != ("skipped" in base):
                status = "SKIP-CHANGED"
                failures.append(
                    f"{name}: skip status changed "
                    f"(base={base.get('skipped')!r}, fresh={entry.get('skipped')!r})"
                )
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  {status}")
            continue
        base_fp = fingerprint_of(base)
        fresh_fp = fingerprint_of(entry)
        if "wall_s" not in base or "wall_s" not in entry:
            which = "baseline" if "wall_s" not in base else "fresh run"
            failures.append(f"{name}: malformed entry — no 'wall_s' in the {which}")
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  MALFORMED")
            continue
        base_wall = base["wall_s"]
        wall = entry["wall_s"]
        ratio = wall / base_wall
        limit = overrides.get(name, tolerance)
        status = "ok" if limit == tolerance else f"ok (tol {limit:.2f})"
        drifts = fingerprint_drift(base_fp, fresh_fp)
        if drifts:
            status = "FINGERPRINT"
            failures.append(
                f"{name}: simulated-result fingerprint drifted "
                f"({len(drifts)} field{'s' if len(drifts) != 1 else ''}):"
            )
            failures.extend(f"    {name}.{drift}" for drift in drifts)
        elif ratio > 1.0 + limit:
            status = "SLOW"
            wall_failures.append(
                f"{name}: wall-clock regression {ratio:.2f}x "
                f"(limit {1.0 + limit:.2f}x: {wall:.4f}s vs {base_wall:.4f}s)"
            )
        print(f"{name:26s} {base_wall:9.4f} {wall:9.4f} {ratio:7.2f}  {status}")

    for name in sorted(set(fresh_scenarios) - set(base_scenarios)):
        print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  new (no baseline)")

    for name, anchor in sorted(_PAIRED_FINGERPRINTS.items()):
        entry = fresh_scenarios.get(name)
        anchor_entry = fresh_scenarios.get(anchor)
        if entry is None or anchor_entry is None:
            continue  # the per-scenario loop already reported any absence
        if "skipped" in entry or "skipped" in anchor_entry:
            continue
        drifts = fingerprint_drift(fingerprint_of(anchor_entry), fingerprint_of(entry))
        if drifts:
            failures.append(
                f"{name}: fingerprint differs from its serial anchor "
                f"{anchor!r} — cross-backend bit-identity broken:"
            )
            failures.extend(f"    {name}.{drift}" for drift in drifts)
            print(f"{name} vs {anchor}: PAIRED-FINGERPRINT MISMATCH")
        else:
            print(f"{name} vs {anchor}: fingerprints bit-identical")
    return failures, wall_failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="baseline JSON to gate against"
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        help="gate this pre-measured run instead of running the harness",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="gate only these scenarios: the harness measures just them "
        "and the baseline is filtered to match, so a subset run (e.g. "
        "the CI serve smoke) never fails on scenarios it did not "
        "measure (repeatable)",
    )
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report failures but always exit 0 (CI smoke mode)",
    )
    parser.add_argument(
        "--wall-advisory",
        action="store_true",
        help="wall-clock regressions report but never block; fingerprint "
        "drift still fails (for noisy shared runners)",
    )
    parser.add_argument(
        "--check-fusion",
        action="store_true",
        help="also run the paired fused-vs-unfused fingerprint check "
        "(REPRO_FUSE=1 vs =0 on the fig7_bt scenarios)",
    )
    parser.add_argument(
        "--fusion-only",
        action="store_true",
        help="run only the paired fusion check, skip the baseline gate",
    )
    args = parser.parse_args(argv)

    fingerprint_failures: list[str] = []
    wall_failures: list[str] = []

    if args.fusion_only:
        fingerprint_failures += check_fusion(max(1, min(args.repeat, 2)))
    else:
        if not args.baseline.exists():
            print(f"perf_gate: no baseline at {args.baseline}; nothing to gate")
            return 0
        baseline = json.loads(args.baseline.read_text())
        if args.fresh is not None:
            fresh = json.loads(args.fresh.read_text())
        else:
            fresh = measure(args.repeat, args.scenario)
        if args.scenario:
            selected = set(args.scenario)
            missing = selected - set(baseline.get("scenarios", {}))
            for name in sorted(missing):
                print(f"perf_gate: note — {name!r} has no baseline entry yet")
            for doc in (baseline, fresh):
                doc["scenarios"] = {
                    name: entry
                    for name, entry in doc.get("scenarios", {}).items()
                    if name in selected
                }
        fingerprint_failures, wall_failures = gate(baseline, fresh)
        if args.check_fusion:
            fingerprint_failures += check_fusion(max(1, min(args.repeat, 2)))

    failures = fingerprint_failures + wall_failures
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        if args.advisory:
            print("(advisory mode: exit 0)")
            return 0
        if args.wall_advisory and not fingerprint_failures:
            print("(wall-advisory mode: wall-clock only, exit 0)")
            return 0
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
