#!/usr/bin/env python
"""Performance gate: compare a fresh bench run against the checked-in baseline.

Runs ``benchmarks/bench_wallclock.py`` (or accepts a pre-measured run via
``--fresh``) and compares every scenario against ``BENCH_wallclock.json``
at the repo root:

* **fingerprints** (``sim_now_ns``, ``events``, traffic totals, …) must
  match the baseline exactly — a mismatch means the simulation produces
  different *results*, which is a correctness failure, never acceptable;
* **wall_s** may not exceed the baseline by more than the baseline's
  ``tolerance`` (15 % by default) — a wall-clock regression.

Exit status is non-zero on any failure unless ``--advisory`` is given
(CI smoke mode: report, never block).

Usage::

    PYTHONPATH=src python tools/perf_gate.py                  # measure + gate
    PYTHONPATH=src python tools/perf_gate.py --advisory       # report only
    PYTHONPATH=src python tools/perf_gate.py --fresh run.json # gate a prior run
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_wallclock.json"

#: Keys that are measurements, not simulated-result fingerprints.
_NON_FINGERPRINT_KEYS = {"wall_s", "before_wall_s", "speedup", "skipped"}

#: Scenario pairs whose *fresh* fingerprints must agree with each other:
#: the same workload run on two kernel backends (DESIGN.md §11). A
#: drift here is a cross-backend correctness failure even when each
#: scenario individually matches its own baseline.
_PAIRED_FINGERPRINTS = {"fig7_bt_sharded": "fig7_bt"}


def fingerprint_of(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k not in _NON_FINGERPRINT_KEYS}


def fingerprint_drift(base_fp: dict, fresh_fp: dict) -> list[str]:
    """Per-field drift report between two fingerprints (empty = equal).

    Names every field that changed value, vanished, or newly appeared,
    so a failing gate says *which* simulated result moved instead of
    dumping two whole dicts to eyeball.
    """
    drifts: list[str] = []
    for key in sorted(set(base_fp) | set(fresh_fp)):
        if key not in fresh_fp:
            drifts.append(f"{key}: missing from fresh run (baseline {base_fp[key]!r})")
        elif key not in base_fp:
            drifts.append(f"{key}: new field not in baseline (fresh {fresh_fp[key]!r})")
        elif base_fp[key] != fresh_fp[key]:
            drifts.append(f"{key}: {base_fp[key]!r} -> {fresh_fp[key]!r}")
    return drifts


def measure(repeat: int) -> dict:
    """Run the wall-clock harness in a subprocess, return its document."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    try:
        subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_wallclock.py"),
                "--repeat",
                str(repeat),
                "--out",
                str(out_path),
            ],
            check=True,
            env=env,
            cwd=REPO_ROOT,
        )
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


def gate(baseline: dict, fresh: dict) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    tolerance = baseline.get("tolerance", 0.15)
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})

    print(f"{'scenario':26s} {'base_s':>9s} {'fresh_s':>9s} {'ratio':>7s}  status")
    for name, base in sorted(base_scenarios.items()):
        entry = fresh_scenarios.get(name)
        if entry is None:
            failures.append(f"{name}: missing from the fresh run")
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  MISSING")
            continue
        if "skipped" in base or "skipped" in entry:
            status = "skipped"
            if ("skipped" in entry) != ("skipped" in base):
                status = "SKIP-CHANGED"
                failures.append(
                    f"{name}: skip status changed "
                    f"(base={base.get('skipped')!r}, fresh={entry.get('skipped')!r})"
                )
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  {status}")
            continue
        base_fp = fingerprint_of(base)
        fresh_fp = fingerprint_of(entry)
        if "wall_s" not in base or "wall_s" not in entry:
            which = "baseline" if "wall_s" not in base else "fresh run"
            failures.append(f"{name}: malformed entry — no 'wall_s' in the {which}")
            print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  MALFORMED")
            continue
        base_wall = base["wall_s"]
        wall = entry["wall_s"]
        ratio = wall / base_wall
        status = "ok"
        drifts = fingerprint_drift(base_fp, fresh_fp)
        if drifts:
            status = "FINGERPRINT"
            failures.append(
                f"{name}: simulated-result fingerprint drifted "
                f"({len(drifts)} field{'s' if len(drifts) != 1 else ''}):"
            )
            failures.extend(f"    {name}.{drift}" for drift in drifts)
        elif ratio > 1.0 + tolerance:
            status = "SLOW"
            failures.append(
                f"{name}: wall-clock regression {ratio:.2f}x "
                f"(limit {1.0 + tolerance:.2f}x: {wall:.4f}s vs {base_wall:.4f}s)"
            )
        print(f"{name:26s} {base_wall:9.4f} {wall:9.4f} {ratio:7.2f}  {status}")

    for name in sorted(set(fresh_scenarios) - set(base_scenarios)):
        print(f"{name:26s} {'-':>9s} {'-':>9s} {'-':>7s}  new (no baseline)")

    for name, anchor in sorted(_PAIRED_FINGERPRINTS.items()):
        entry = fresh_scenarios.get(name)
        anchor_entry = fresh_scenarios.get(anchor)
        if entry is None or anchor_entry is None:
            continue  # the per-scenario loop already reported any absence
        if "skipped" in entry or "skipped" in anchor_entry:
            continue
        drifts = fingerprint_drift(fingerprint_of(anchor_entry), fingerprint_of(entry))
        if drifts:
            failures.append(
                f"{name}: fingerprint differs from its serial anchor "
                f"{anchor!r} — cross-backend bit-identity broken:"
            )
            failures.extend(f"    {name}.{drift}" for drift in drifts)
            print(f"{name} vs {anchor}: PAIRED-FINGERPRINT MISMATCH")
        else:
            print(f"{name} vs {anchor}: fingerprints bit-identical")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE, help="baseline JSON to gate against"
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        help="gate this pre-measured run instead of running the harness",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report failures but always exit 0 (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"perf_gate: no baseline at {args.baseline}; nothing to gate")
        return 0
    baseline = json.loads(args.baseline.read_text())
    if args.fresh is not None:
        fresh = json.loads(args.fresh.read_text())
    else:
        fresh = measure(args.repeat)

    failures = gate(baseline, fresh)
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        if args.advisory:
            print("(advisory mode: exit 0)")
            return 0
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
