#!/usr/bin/env python
"""Validate streamed serve job events against the checked-in schema.

Input files are JSON Lines (one ``repro.job_event/v1`` envelope per
line, the natural dump of ``SimService.event_log``) or a single JSON
array of envelopes. Validation reuses the stdlib-only engine in
``tools/validate_metrics.py``; on top of per-event schema conformance
this also checks the two stream-level invariants submitters rely on:

* ``seq`` strictly increases across the stream;
* per job, at most one terminal ``result`` event, and nothing after it.

Usage:  python tools/validate_job_stream.py FILE [FILE ...]
Exit status is non-zero if any file fails.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from validate_metrics import validate

SCHEMA_PATH = (
    Path(__file__).resolve().parent.parent / "schemas" / "job_result.schema.json"
)


def load_events(text: str) -> list[dict]:
    """Parse a JSON array or JSON-lines dump into a list of events."""
    stripped = text.lstrip()
    if stripped.startswith("["):
        events = json.loads(text)
    else:
        events = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not isinstance(events, list):
        raise ValueError("expected a JSON array or JSON lines of events")
    return events


def validate_stream(events: list[dict], schema=None) -> list[str]:
    """All violations in an event stream (empty list: valid)."""
    if schema is None:
        schema = json.loads(SCHEMA_PATH.read_text())
    errors: list[str] = []
    last_seq = 0.0
    finished: set[str] = set()
    for i, event in enumerate(events):
        for err in validate(event, schema):
            errors.append(f"event[{i}]{err[1:]}")  # strip the leading '$'
        if not isinstance(event, dict):
            continue
        seq = event.get("seq")
        if isinstance(seq, (int, float)) and not isinstance(seq, bool):
            if seq <= last_seq:
                errors.append(
                    f"event[{i}]: seq {seq} not greater than previous {last_seq}"
                )
            last_seq = max(last_seq, seq)
        job_id = event.get("job_id")
        if job_id in finished:
            errors.append(f"event[{i}]: job {job_id!r} already reached its result")
        if event.get("type") == "result" and isinstance(job_id, str):
            finished.add(job_id)
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text())
    status = 0
    for arg in argv:
        try:
            events = load_events(Path(arg).read_text())
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"{arg}: unreadable ({exc})")
            status = 1
            continue
        errors = validate_stream(events, schema)
        if errors:
            status = 1
            print(f"{arg}: INVALID")
            for err in errors:
                print(f"  {err}")
        else:
            jobs = {e.get("job_id") for e in events}
            print(f"{arg}: OK ({len(events)} events, {len(jobs)} jobs)")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
