#!/usr/bin/env python
"""Validate run-metrics JSON files against the checked-in schema.

Stdlib-only: implements exactly the JSON-Schema subset the checked-in
schemas use (type, const, enum, required, properties,
additionalProperties, propertyNames.pattern, minLength, items) so CI
needs no third-party validator. ``validate(doc, schema)`` is also the
reusable engine behind ``tools/validate_job_stream.py`` and the
schema-conformance tests.

Usage:  python tools/validate_metrics.py FILE [FILE ...]
Exit status is non-zero if any file fails validation.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "run_metrics.schema.json"

_TYPES = {
    "object": dict,
    "string": str,
    "number": (int, float),
    "boolean": bool,
    "array": list,
}


def _check(value, schema, path: str, errors: list[str]) -> None:
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
        return
    expected = schema.get("type")
    if expected is not None:
        pytype = _TYPES[expected]
        # bool is an int subclass; a True where a number belongs is a bug.
        if isinstance(value, bool) and expected != "boolean":
            errors.append(f"{path}: expected {expected}, got boolean")
            return
        if not isinstance(value, pytype):
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if expected == "string" and len(value) < schema.get("minLength", 0):
        errors.append(f"{path}: shorter than minLength {schema['minLength']}")
    if expected == "array":
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                _check(item, items, f"{path}[{i}]", errors)
        return
    if expected != "object":
        return

    props = schema.get("properties", {})
    for key in schema.get("required", []):
        if key not in value:
            errors.append(f"{path}: missing required key {key!r}")
    name_pattern = schema.get("propertyNames", {}).get("pattern")
    additional = schema.get("additionalProperties", True)
    for key, sub in value.items():
        if name_pattern and not re.match(name_pattern, key):
            errors.append(f"{path}.{key}: key does not match {name_pattern!r}")
        if key in props:
            _check(sub, props[key], f"{path}.{key}", errors)
        elif additional is False:
            errors.append(f"{path}: unexpected key {key!r}")
        elif isinstance(additional, dict):
            _check(sub, additional, f"{path}.{key}", errors)


def validate(doc, schema=None) -> list[str]:
    """All schema violations of ``doc`` (empty list: valid)."""
    if schema is None:
        schema = json.loads(SCHEMA_PATH.read_text())
    errors: list[str] = []
    _check(doc, schema, "$", errors)
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text())
    status = 0
    for arg in argv:
        try:
            doc = json.loads(Path(arg).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{arg}: unreadable ({exc})")
            status = 1
            continue
        errors = validate(doc, schema)
        if errors:
            status = 1
            print(f"{arg}: INVALID")
            for err in errors:
                print(f"  {err}")
        else:
            n = len(doc.get("metrics", {}))
            print(f"{arg}: OK ({n} series)")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
